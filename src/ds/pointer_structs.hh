/**
 * @file
 * Pointer-based data structures allocated through the irregular
 * affinity API (§5.1, Fig. 10): singly linked lists, an unbalanced
 * binary search tree, and a chained hash table for hash joins. Each
 * node is one 64 B irregular slot; inserts pass the structurally
 * adjacent node(s) as affinity addresses so the runtime can colocate
 * chains subject to load balance.
 */

#ifndef AFFALLOC_DS_POINTER_STRUCTS_HH
#define AFFALLOC_DS_POINTER_STRUCTS_HH

#include <cstdint>
#include <vector>

#include "alloc/affinity_alloc.hh"

namespace affalloc::ds
{

/** Linked-list node (padded to one cache line). */
struct ListNode
{
    ListNode *next = nullptr;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    char pad[64 - 3 * sizeof(std::uint64_t)];
};
static_assert(sizeof(ListNode) == 64);

/**
 * Singly linked list built with malloc_aff(size, {prev}) exactly as
 * Fig. 10's linked_list_append.
 */
class AffinityList
{
  public:
    /** @param use_affinity false: plain-heap baseline layout. */
    explicit AffinityList(alloc::AffinityAllocator &allocator,
                          bool use_affinity = true)
        : allocator_(allocator), useAffinity_(use_affinity)
    {}
    ~AffinityList();

    AffinityList(const AffinityList &) = delete;
    AffinityList &operator=(const AffinityList &) = delete;

    /** Append a node holding @p key at the tail. */
    ListNode *append(std::uint64_t key, std::uint64_t value = 0);

    ListNode *head() const { return head_; }
    std::uint64_t size() const { return size_; }

    /**
     * Pop and free the first @p count nodes (clamped to the size).
     * Returns the number removed. Freed slots return to the
     * allocator's per-bank free lists and may be recycled by later
     * appends — the churn pattern that keeps free lists populated
     * while the structure lives.
     */
    std::uint64_t removeFront(std::uint64_t count);

    /** Find the first node with @p key (host-functional). */
    const ListNode *find(std::uint64_t key) const;

  private:
    alloc::AffinityAllocator &allocator_;
    bool useAffinity_ = true;
    ListNode *head_ = nullptr;
    ListNode *tail_ = nullptr;
    std::uint64_t size_ = 0;
};

/** Binary search tree node (padded to one cache line). */
struct TreeNode
{
    TreeNode *left = nullptr;
    TreeNode *right = nullptr;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    char pad[64 - 2 * sizeof(void *) - 2 * sizeof(std::uint64_t)];
};
static_assert(sizeof(TreeNode) == 64);

/**
 * Unbalanced binary search tree (bin_tree workload: keys inserted in
 * random order without rebalancing). Inserts pass the parent node as
 * the affinity address.
 */
class AffinityTree
{
  public:
    /** @param use_affinity false: plain-heap baseline layout. */
    explicit AffinityTree(alloc::AffinityAllocator &allocator,
                          bool use_affinity = true)
        : allocator_(allocator), useAffinity_(use_affinity)
    {}
    ~AffinityTree();

    AffinityTree(const AffinityTree &) = delete;
    AffinityTree &operator=(const AffinityTree &) = delete;

    /** Insert @p key (duplicates go right). */
    TreeNode *insert(std::uint64_t key, std::uint64_t value = 0);

    TreeNode *root() const { return root_; }
    std::uint64_t size() const { return size_; }

    /** Find a node with @p key (host-functional). */
    const TreeNode *find(std::uint64_t key) const;

  private:
    alloc::AffinityAllocator &allocator_;
    bool useAffinity_ = true;
    TreeNode *root_ = nullptr;
    std::uint64_t size_ = 0;
};

/**
 * Chained hash table for the hash_join workload. The bucket-head
 * array is allocated with the affine API (partitioned across banks);
 * chain nodes are irregular slots with the bucket head slot as the
 * affinity address, so probing a bucket stays within its bank.
 */
class HashJoinTable
{
  public:
    /**
     * @param num_buckets power of two
     * @param use_affinity false: plain-heap baseline layout
     */
    HashJoinTable(alloc::AffinityAllocator &allocator,
                  std::uint64_t num_buckets, bool use_affinity);
    ~HashJoinTable();

    HashJoinTable(const HashJoinTable &) = delete;
    HashJoinTable &operator=(const HashJoinTable &) = delete;

    /** Insert a (key, value) pair. */
    void insert(std::uint64_t key, std::uint64_t value);

    /** Probe: returns the matching node or nullptr. */
    const ListNode *probe(std::uint64_t key) const;

    /** Bucket index of @p key. */
    std::uint64_t
    bucketOf(std::uint64_t key) const
    {
        // Fibonacci hash.
        return (key * 0x9e3779b97f4a7c15ULL) >> shift_;
    }
    /** Host pointer of bucket @p b's head slot. */
    ListNode *const *bucketHead(std::uint64_t b) const
    {
        return &buckets_[b];
    }
    std::uint64_t numBuckets() const { return numBuckets_; }
    std::uint64_t size() const { return size_; }

  private:
    alloc::AffinityAllocator &allocator_;
    std::uint64_t numBuckets_;
    int shift_;
    bool useAffinity_;
    ListNode **buckets_ = nullptr;
    std::vector<ListNode *> nodes_;
    std::uint64_t size_ = 0;
};

} // namespace affalloc::ds

#endif // AFFALLOC_DS_POINTER_STRUCTS_HH
