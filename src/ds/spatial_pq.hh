/**
 * @file
 * Spatially distributed relaxed priority queue (§4.2: "Priority
 * queues, e.g. MultiQueues, can also be implemented as one queue per
 * bank"). One binary heap per partition, with storage aligned to a
 * partitioned array so pushes for partition-local ids are bank-local;
 * pops follow the MultiQueues discipline (sample a few sub-queues,
 * take the best), trading strict ordering for locality and
 * parallelism.
 */

#ifndef AFFALLOC_DS_SPATIAL_PQ_HH
#define AFFALLOC_DS_SPATIAL_PQ_HH

#include <cstdint>
#include <vector>

#include "alloc/affinity_alloc.hh"
#include "sim/rng.hh"

namespace affalloc::ds
{

/** One (id, priority) entry. */
struct PqEntry
{
    std::uint32_t id = 0;
    std::uint32_t priority = 0;
};

/**
 * The distributed priority queue. Functionally a relaxed min-queue
 * over ids in [0, num_elems); each id is owned by the partition of
 * the aligned array that holds its element.
 */
class SpatialPriorityQueue
{
  public:
    /**
     * @param aligned_array the partitioned array the heaps align to
     * @param num_elems id space size
     * @param num_partitions sub-queue count (paper: one per bank)
     * @param capacity_factor per-partition heap capacity multiplier
     */
    SpatialPriorityQueue(alloc::AffinityAllocator &allocator,
                         const void *aligned_array,
                         std::uint64_t num_elems,
                         std::uint32_t num_partitions,
                         std::uint32_t capacity_factor = 2);
    ~SpatialPriorityQueue();

    SpatialPriorityQueue(const SpatialPriorityQueue &) = delete;
    SpatialPriorityQueue &operator=(const SpatialPriorityQueue &) =
        delete;

    /** Partition owning id @p v. */
    std::uint32_t
    partitionOf(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(
            std::uint64_t(v) * numPartitions_ / numElems_);
    }

    /** Push (id, priority) into id's local sub-heap. */
    void push(std::uint32_t id, std::uint32_t priority);

    /**
     * Relaxed pop (MultiQueues): sample @p samples sub-heaps with the
     * supplied RNG and pop the smallest of their minima. Returns
     * false when the whole structure is empty.
     */
    bool popRelaxed(Rng &rng, PqEntry &out, int samples = 2);

    /** Pop the minimum of one partition; false if it is empty. */
    bool popLocal(std::uint32_t partition, PqEntry &out);

    /** Total entries across all sub-heaps. */
    std::uint64_t size() const { return size_; }
    /** True when no entries remain. */
    bool empty() const { return size_ == 0; }
    /** Number of heap-node moves performed (timing proxy). */
    std::uint64_t heapMoves() const { return heapMoves_; }
    /** Number of partitions. */
    std::uint32_t numPartitions() const { return numPartitions_; }

    /** Host pointer of partition @p p's heap storage (timing hook). */
    const PqEntry *
    heapStorage(std::uint32_t p) const
    {
        return storage_ + std::uint64_t(p) * capacity_;
    }
    /** Current entry count of partition @p p. */
    std::uint32_t heapSize(std::uint32_t p) const { return sizes_[p]; }

  private:
    void siftUp(std::uint32_t p, std::uint32_t idx);
    void siftDown(std::uint32_t p, std::uint32_t idx);
    PqEntry &at(std::uint32_t p, std::uint32_t idx)
    {
        return storage_[std::uint64_t(p) * capacity_ + idx];
    }

    alloc::AffinityAllocator &allocator_;
    std::uint64_t numElems_;
    std::uint32_t numPartitions_;
    std::uint32_t capacity_;
    PqEntry *storage_ = nullptr;
    std::vector<std::uint32_t> sizes_;
    std::vector<PqEntry> spills_; // overflow safety net
    std::uint64_t size_ = 0;
    std::uint64_t heapMoves_ = 0;
};

} // namespace affalloc::ds

#endif // AFFALLOC_DS_SPATIAL_PQ_HH
