/**
 * @file
 * Spatially distributed work queue (§4.2, Fig. 9): one sub-queue per
 * vertex partition, with storage and tail counters aligned to the
 * partitioned vertex array so pushes from a partition's bank are
 * local. Replaces the global frontier queue of push-based BFS/SSSP.
 */

#ifndef AFFALLOC_DS_SPATIAL_QUEUE_HH
#define AFFALLOC_DS_SPATIAL_QUEUE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/affinity_alloc.hh"
#include "sim/types.hh"

namespace affalloc::ds
{

/**
 * The distributed queue. Functionally a bag partitioned by element
 * id; each partition's storage and (line-padded) tail counter live in
 * the bank owning that partition of the aligned array.
 */
class SpatialQueue
{
  public:
    /**
     * @param aligned_array host pointer of the partitioned array the
     *        queue aligns to (recorded by @p allocator)
     * @param num_elems logical id space [0, num_elems)
     * @param num_partitions sub-queue count (paper: one per bank)
     * @param capacity_factor per-partition capacity as a multiple of
     *        num_elems / num_partitions (SSSP re-pushes need > 1)
     */
    SpatialQueue(alloc::AffinityAllocator &allocator,
                 const void *aligned_array, std::uint64_t num_elems,
                 std::uint32_t num_partitions,
                 std::uint32_t capacity_factor = 2);
    ~SpatialQueue();

    SpatialQueue(const SpatialQueue &) = delete;
    SpatialQueue &operator=(const SpatialQueue &) = delete;

    /** Partition owning id @p v. */
    std::uint32_t
    partitionOf(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(
            std::uint64_t(v) * numPartitions_ / numElems_);
    }

    /**
     * Push @p v into its local sub-queue. Returns the slot index
     * within the partition. Overflow falls back to a (remote) spill
     * vector — functionally lossless, counted for the caller.
     */
    std::uint32_t push(std::uint32_t v);

    /** Elements currently in partition @p p (excluding spills). */
    std::span<const std::uint32_t> partition(std::uint32_t p) const;
    /** Spilled elements (overflow); usually empty. */
    const std::vector<std::uint32_t> &spills() const { return spills_; }
    /** Total elements across partitions and spills. */
    std::uint64_t size() const;
    /** Reset all tails (start of an iteration). */
    void clear();

    /** Number of partitions. */
    std::uint32_t numPartitions() const { return numPartitions_; }
    /** Per-partition capacity. */
    std::uint32_t capacity() const { return capacity_; }

    // ------------------------------------------------- timing hooks
    /** Host pointer of slot @p idx of partition @p p. */
    const std::uint32_t *
    slotPtr(std::uint32_t p, std::uint32_t idx) const
    {
        return storage_ + std::uint64_t(p) * capacity_ + idx;
    }
    /** Host pointer of partition @p p's tail counter. */
    const std::uint32_t *tailPtr(std::uint32_t p) const
    {
        return tailSlots_[p];
    }

  private:
    alloc::AffinityAllocator &allocator_;
    std::uint64_t numElems_;
    std::uint32_t numPartitions_;
    std::uint32_t capacity_;
    std::uint32_t *storage_ = nullptr;
    std::vector<std::uint32_t *> tailSlots_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint32_t> spills_;
};

} // namespace affalloc::ds

#endif // AFFALLOC_DS_SPATIAL_QUEUE_HH
