#include "ds/pointer_structs.hh"

#include "sim/log.hh"

namespace affalloc::ds
{

// ---------------------------------------------------------- AffinityList

AffinityList::~AffinityList()
{
    ListNode *n = head_;
    while (n) {
        ListNode *next = n->next;
        allocator_.freeAff(n);
        n = next;
    }
}

ListNode *
AffinityList::append(std::uint64_t key, std::uint64_t value)
{
    // Fig. 10: allocate the new node near the previous one.
    const void *aff[1] = {tail_};
    void *raw;
    if (!useAffinity_)
        raw = allocator_.allocPlain(sizeof(ListNode));
    else if (tail_)
        raw = allocator_.mallocAff(sizeof(ListNode), 1, aff);
    else
        raw = allocator_.mallocAff(sizeof(ListNode), 0, nullptr);
    auto *node = new (raw) ListNode;
    node->key = key;
    node->value = value;
    node->next = nullptr;
    if (tail_)
        tail_->next = node;
    else
        head_ = node;
    tail_ = node;
    ++size_;
    return node;
}

std::uint64_t
AffinityList::removeFront(std::uint64_t count)
{
    std::uint64_t removed = 0;
    while (removed < count && head_) {
        ListNode *next = head_->next;
        allocator_.freeAff(head_);
        head_ = next;
        ++removed;
    }
    if (!head_)
        tail_ = nullptr;
    size_ -= removed;
    return removed;
}

const ListNode *
AffinityList::find(std::uint64_t key) const
{
    for (const ListNode *n = head_; n; n = n->next)
        if (n->key == key)
            return n;
    return nullptr;
}

// ---------------------------------------------------------- AffinityTree

namespace
{

void
freeSubtree(alloc::AffinityAllocator &allocator, TreeNode *n)
{
    if (!n)
        return;
    freeSubtree(allocator, n->left);
    freeSubtree(allocator, n->right);
    allocator.freeAff(n);
}

} // namespace

AffinityTree::~AffinityTree()
{
    freeSubtree(allocator_, root_);
}

TreeNode *
AffinityTree::insert(std::uint64_t key, std::uint64_t value)
{
    TreeNode *parent = nullptr;
    TreeNode **slot = &root_;
    while (*slot) {
        parent = *slot;
        slot = key < parent->key ? &parent->left : &parent->right;
    }
    const void *aff[1] = {parent};
    void *raw;
    if (!useAffinity_)
        raw = allocator_.allocPlain(sizeof(TreeNode));
    else if (parent)
        raw = allocator_.mallocAff(sizeof(TreeNode), 1, aff);
    else
        raw = allocator_.mallocAff(sizeof(TreeNode), 0, nullptr);
    auto *node = new (raw) TreeNode;
    node->key = key;
    node->value = value;
    *slot = node;
    ++size_;
    return node;
}

const TreeNode *
AffinityTree::find(std::uint64_t key) const
{
    const TreeNode *n = root_;
    while (n && n->key != key)
        n = key < n->key ? n->left : n->right;
    return n;
}

// ---------------------------------------------------------- HashJoinTable

HashJoinTable::HashJoinTable(alloc::AffinityAllocator &allocator,
                             std::uint64_t num_buckets, bool use_affinity)
    : allocator_(allocator), numBuckets_(num_buckets),
      useAffinity_(use_affinity)
{
    if (num_buckets == 0 || (num_buckets & (num_buckets - 1)) != 0)
        SIM_FATAL("ds", "hash table bucket count must be a power of two");
    int bits = 0;
    while ((std::uint64_t(1) << bits) < num_buckets)
        ++bits;
    shift_ = 64 - bits;

    if (useAffinity_) {
        alloc::AffineArray req;
        req.elem_size = sizeof(ListNode *);
        req.num_elem = numBuckets_;
        req.partition = true;
        buckets_ =
            static_cast<ListNode **>(allocator.mallocAff(req));
    } else {
        buckets_ = static_cast<ListNode **>(
            allocator.allocPlain(numBuckets_ * sizeof(ListNode *)));
    }
    for (std::uint64_t b = 0; b < numBuckets_; ++b)
        buckets_[b] = nullptr;
}

HashJoinTable::~HashJoinTable()
{
    for (ListNode *n : nodes_)
        allocator_.freeAff(n);
    allocator_.freeAff(buckets_);
}

void
HashJoinTable::insert(std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t b = bucketOf(key);
    void *raw;
    if (useAffinity_) {
        // Chain nodes are placed near the bucket-head slot.
        const void *aff[1] = {&buckets_[b]};
        raw = allocator_.mallocAff(sizeof(ListNode), 1, aff);
    } else {
        raw = allocator_.allocPlain(sizeof(ListNode));
    }
    auto *node = new (raw) ListNode;
    node->key = key;
    node->value = value;
    node->next = buckets_[b];
    buckets_[b] = node;
    nodes_.push_back(node);
    ++size_;
}

const ListNode *
HashJoinTable::probe(std::uint64_t key) const
{
    for (const ListNode *n = buckets_[bucketOf(key)]; n; n = n->next)
        if (n->key == key)
            return n;
    return nullptr;
}

} // namespace affalloc::ds
