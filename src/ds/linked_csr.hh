/**
 * @file
 * Linked CSR graph format (§5.3, Fig. 11): each vertex's edges are
 * stored in a chain of cache-line-sized nodes allocated through the
 * irregular affinity API, so each node can be placed close to the
 * vertices its edges point at. This is the data-structure co-design
 * that unlocks fine-grained irregular layout for graphs.
 */

#ifndef AFFALLOC_DS_LINKED_CSR_HH
#define AFFALLOC_DS_LINKED_CSR_HH

#include <cstdint>
#include <vector>

#include "alloc/affinity_alloc.hh"
#include "graph/csr.hh"

namespace affalloc::ds
{

/**
 * One edge-list node. The header is a single 8-byte word — the next
 * pointer with the entry count and weighted flag packed into its
 * unused low bits (nodes are 64 B-aligned slots) — exactly the
 * paper's density: "a 64 B cache line can hold 14 edges of 4 B after
 * the 8 B pointer". Weighted nodes hold 7 (dst, weight) pairs.
 */
struct LinkedCsrNode
{
    /** [63:6] next-node pointer bits, [5:1] count, [0] weighted. */
    std::uint64_t bits = 0;

    /** Next node of this vertex's chain (nullptr: end). */
    LinkedCsrNode *
    next() const
    {
        return reinterpret_cast<LinkedCsrNode *>(bits &
                                                 ~std::uint64_t(63));
    }
    /** Link @p n as the next node (must be 64 B aligned). */
    void
    setNext(LinkedCsrNode *n)
    {
        bits = (bits & 63) | reinterpret_cast<std::uint64_t>(n);
    }
    /** Edges stored in this node. */
    std::uint32_t
    count() const
    {
        return static_cast<std::uint32_t>((bits >> 1) & 31);
    }
    /** Set the entry count (<= 31). */
    void
    setCount(std::uint32_t c)
    {
        bits = (bits & ~std::uint64_t(62)) | (std::uint64_t(c & 31) << 1);
    }
    /** Whether entries are (dst, weight) pairs. */
    bool weighted() const { return bits & 1; }
    /** Set the weighted flag. */
    void
    setWeighted(bool w)
    {
        bits = (bits & ~std::uint64_t(1)) | (w ? 1 : 0);
    }

    /** Payload accessors. */
    std::uint32_t *
    payload()
    {
        return reinterpret_cast<std::uint32_t *>(this + 1);
    }
    const std::uint32_t *
    payload() const
    {
        return reinterpret_cast<const std::uint32_t *>(this + 1);
    }
    /** Destination of entry @p i. */
    graph::VertexId
    dst(std::uint32_t i) const
    {
        return weighted() ? payload()[2 * i] : payload()[i];
    }
    /** Weight of entry @p i (1 when unweighted). */
    std::uint32_t
    weight(std::uint32_t i) const
    {
        return weighted() ? payload()[2 * i + 1] : 1;
    }
};

static_assert(sizeof(LinkedCsrNode) == 8, "node header must be 8 B");

/** Construction options. */
struct LinkedCsrOptions
{
    /** Node size in bytes (>= 64, a valid pool interleaving). */
    std::uint32_t nodeBytes = 64;
    /** Store edge weights. */
    bool weighted = false;
    /**
     * Allocate nodes with affinity addresses pointing at the
     * destination vertices' property slots (the co-design). When
     * false, nodes are allocated with no affinity information
     * (baseline layouts / ablations).
     */
    bool useAffinity = true;
    /**
     * Take affinity to the *owning* vertex's slot instead of the
     * destinations'. Right for pull-style traversals that scan a
     * vertex's own chain and only issue small indirect probes (e.g.
     * BFS bottom-up against a frontier bitmap): the chase stays in
     * the owner's bank.
     */
    bool affinityToOwner = false;
};

/**
 * The linked CSR graph. Vertex property placement is supplied by the
 * caller (the array the affinity addresses point into); head pointers
 * are allocated aligned to that array so scanning a partition's heads
 * is local.
 */
class LinkedCsr
{
  public:
    /**
     * Build from a standard CSR in one O(|E|) pass (§5.3).
     *
     * @param allocator the affinity runtime to allocate nodes from
     * @param vertex_array host pointer of the per-vertex property
     *        array nodes should be placed near (must be recorded by
     *        the allocator)
     * @param vertex_elem_size bytes per element of @p vertex_array
     */
    LinkedCsr(const graph::Csr &g, alloc::AffinityAllocator &allocator,
              const void *vertex_array, std::uint32_t vertex_elem_size,
              LinkedCsrOptions opts = LinkedCsrOptions{});
    ~LinkedCsr();

    LinkedCsr(const LinkedCsr &) = delete;
    LinkedCsr &operator=(const LinkedCsr &) = delete;

    /** First edge node of @p v (nullptr when v has no edges). */
    LinkedCsrNode *head(graph::VertexId v) const { return heads_[v]; }
    /** Host pointer of the heads array (affine-allocated). */
    LinkedCsrNode *const *headsArray() const { return heads_; }
    /** Number of vertices. */
    graph::VertexId numVertices() const { return numVertices_; }
    /** Total edge nodes allocated. */
    std::uint64_t numNodes() const { return numNodes_; }
    /** Edge entries per node. */
    std::uint32_t edgesPerNode() const { return edgesPerNode_; }
    /** Node size in bytes. */
    std::uint32_t nodeBytes() const { return nodeBytes_; }

  private:
    alloc::AffinityAllocator &allocator_;
    graph::VertexId numVertices_ = 0;
    std::uint32_t nodeBytes_ = 64;
    std::uint32_t edgesPerNode_ = 0;
    std::uint64_t numNodes_ = 0;
    LinkedCsrNode **heads_ = nullptr;
    std::vector<LinkedCsrNode *> allNodes_;
};

} // namespace affalloc::ds

#endif // AFFALLOC_DS_LINKED_CSR_HH
