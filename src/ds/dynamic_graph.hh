/**
 * @file
 * Dynamic (mutable) linked-CSR graph (§8 "Dynamic Data Structures"):
 * the pointer-based edge representation makes insertion and deletion
 * natural, and every new edge node is allocated through the irregular
 * affinity API so locality is maintained as the graph evolves —
 * without any re-preprocessing.
 */

#ifndef AFFALLOC_DS_DYNAMIC_GRAPH_HH
#define AFFALLOC_DS_DYNAMIC_GRAPH_HH

#include <cstdint>
#include <vector>

#include "alloc/affinity_alloc.hh"
#include "ds/linked_csr.hh"
#include "graph/csr.hh"

namespace affalloc::ds
{

/**
 * A mutable graph over a fixed vertex set. Per-vertex edge chains of
 * LinkedCsrNode; nodes are allocated/released through the affinity
 * runtime as edges come and go.
 */
class DynamicGraph
{
  public:
    /**
     * @param vertex_array per-vertex property array the edge nodes
     *        should stay close to (recorded by @p allocator)
     * @param vertex_elem_size bytes per element of the array
     * @param use_affinity false: placement-oblivious baseline
     */
    DynamicGraph(graph::VertexId num_vertices,
                 alloc::AffinityAllocator &allocator,
                 const void *vertex_array,
                 std::uint32_t vertex_elem_size,
                 bool use_affinity = true);
    ~DynamicGraph();

    DynamicGraph(const DynamicGraph &) = delete;
    DynamicGraph &operator=(const DynamicGraph &) = delete;

    /** Add the directed edge u -> v. O(1). */
    void addEdge(graph::VertexId u, graph::VertexId v);

    /**
     * Remove one occurrence of u -> v (swap-with-last inside the
     * chain; empty nodes are freed back to the runtime).
     * @return true if the edge existed.
     */
    bool removeEdge(graph::VertexId u, graph::VertexId v);

    /** Whether u -> v currently exists. */
    bool hasEdge(graph::VertexId u, graph::VertexId v) const;

    /** Current out-degree of @p u. */
    std::uint32_t degree(graph::VertexId u) const { return degrees_[u]; }
    /** Total directed edges. */
    std::uint64_t numEdges() const { return numEdges_; }
    /** Vertices. */
    graph::VertexId numVertices() const { return numVertices_; }
    /** Live edge nodes. */
    std::uint64_t numNodes() const { return numNodes_; }

    /** First node of u's chain (nullptr when u has no edges). */
    LinkedCsrNode *head(graph::VertexId u) const { return heads_[u]; }

    /** Snapshot into a static CSR (validation / analytics). */
    graph::Csr toCsr() const;

    /**
     * Mean mesh distance from every edge node to its destination
     * vertices' banks — the locality metric §8 cares about as the
     * graph evolves.
     */
    double averageNodeToDestDistance(nsc::Machine &machine) const;

  private:
    alloc::AffinityAllocator &allocator_;
    const char *vertexArray_;
    std::uint32_t vertexElemSize_;
    bool useAffinity_;
    graph::VertexId numVertices_;
    std::uint32_t edgesPerNode_;
    LinkedCsrNode **heads_ = nullptr;
    std::vector<std::uint32_t> degrees_;
    std::uint64_t numEdges_ = 0;
    std::uint64_t numNodes_ = 0;
};

} // namespace affalloc::ds

#endif // AFFALLOC_DS_DYNAMIC_GRAPH_HH
