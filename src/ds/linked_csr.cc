#include "ds/linked_csr.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::ds
{

LinkedCsr::LinkedCsr(const graph::Csr &g,
                     alloc::AffinityAllocator &allocator,
                     const void *vertex_array,
                     std::uint32_t vertex_elem_size, LinkedCsrOptions opts)
    : allocator_(allocator), numVertices_(g.numVertices),
      nodeBytes_(opts.nodeBytes)
{
    if (opts.nodeBytes < 64 || (opts.nodeBytes & (opts.nodeBytes - 1)))
        SIM_FATAL("ds", "linked CSR node size must be a power of two >= 64");
    if (opts.weighted && g.weights.empty())
        SIM_FATAL("ds", "weighted linked CSR requires a weighted source graph");
    const std::uint32_t entry_bytes = opts.weighted ? 8 : 4;
    // The packed header stores the count in the next pointer's free
    // alignment bits, which bounds a node at 31 entries.
    edgesPerNode_ = std::min<std::uint32_t>(
        (opts.nodeBytes - sizeof(LinkedCsrNode)) / entry_bytes, 31);

    const alloc::ArrayInfo *vinfo = allocator.arrayInfo(vertex_array);
    if (!vinfo)
        SIM_FATAL("ds", "linked CSR vertex array is not a recorded allocation");

    // Heads array aligned element-for-element with the vertex
    // property array so head lookups are local to vertex streams.
    alloc::AffineArray heads_req;
    heads_req.elem_size = sizeof(LinkedCsrNode *);
    heads_req.num_elem = numVertices_;
    heads_req.align_to = vertex_array;
    heads_ = static_cast<LinkedCsrNode **>(allocator.mallocAff(heads_req));
    std::fill_n(heads_, numVertices_, nullptr);

    const auto *vbytes = static_cast<const char *>(vertex_array);
    std::vector<const void *> aff;
    aff.reserve(edgesPerNode_);

    for (graph::VertexId v = 0; v < numVertices_; ++v) {
        LinkedCsrNode *tail = nullptr;
        const std::uint64_t begin = g.rowOffsets[v];
        const std::uint64_t end = g.rowOffsets[v + 1];
        for (std::uint64_t e = begin; e < end; e += edgesPerNode_) {
            const std::uint32_t n = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(edgesPerNode_, end - e));

            void *raw;
            if (opts.useAffinity && opts.affinityToOwner) {
                // Pull-style placement: colocate with the owner.
                const void *owner =
                    vbytes + std::uint64_t(v) * vertex_elem_size;
                raw = allocator.mallocAff(nodeBytes_, 1, &owner);
            } else if (opts.useAffinity) {
                // Affinity addresses: the destination vertices'
                // property slots (sampled to the API's limit).
                aff.clear();
                for (std::uint32_t i = 0; i < n; ++i) {
                    aff.push_back(vbytes + std::uint64_t(g.edges[e + i]) *
                                               vertex_elem_size);
                }
                raw = allocator.mallocAff(nodeBytes_,
                                          static_cast<int>(aff.size()),
                                          aff.data());
            } else {
                raw = allocator.mallocAff(nodeBytes_, 0, nullptr);
            }

            auto *node = new (raw) LinkedCsrNode;
            node->setCount(n);
            node->setWeighted(opts.weighted);
            for (std::uint32_t i = 0; i < n; ++i) {
                if (opts.weighted) {
                    node->payload()[2 * i] = g.edges[e + i];
                    node->payload()[2 * i + 1] = g.weights[e + i];
                } else {
                    node->payload()[i] = g.edges[e + i];
                }
            }
            if (tail)
                tail->setNext(node);
            else
                heads_[v] = node;
            tail = node;
            allNodes_.push_back(node);
            ++numNodes_;
        }
    }
}

LinkedCsr::~LinkedCsr()
{
    for (LinkedCsrNode *n : allNodes_)
        allocator_.freeAff(n);
    if (heads_)
        allocator_.freeAff(heads_);
}

} // namespace affalloc::ds
