#include "ds/dynamic_graph.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::ds
{

DynamicGraph::DynamicGraph(graph::VertexId num_vertices,
                           alloc::AffinityAllocator &allocator,
                           const void *vertex_array,
                           std::uint32_t vertex_elem_size,
                           bool use_affinity)
    : allocator_(allocator),
      vertexArray_(static_cast<const char *>(vertex_array)),
      vertexElemSize_(vertex_elem_size), useAffinity_(use_affinity),
      numVertices_(num_vertices),
      edgesPerNode_((64 - sizeof(LinkedCsrNode)) / 4),
      degrees_(num_vertices, 0)
{
    if (!allocator.arrayInfo(vertex_array))
        SIM_FATAL("ds", "dynamic graph: vertex array is not a recorded allocation");
    alloc::AffineArray heads_req;
    heads_req.elem_size = sizeof(LinkedCsrNode *);
    heads_req.num_elem = num_vertices;
    heads_req.align_to = vertex_array;
    heads_ = static_cast<LinkedCsrNode **>(
        allocator.mallocAff(heads_req));
    std::fill_n(heads_, num_vertices, nullptr);
}

DynamicGraph::~DynamicGraph()
{
    for (graph::VertexId u = 0; u < numVertices_; ++u) {
        LinkedCsrNode *n = heads_[u];
        while (n) {
            LinkedCsrNode *next = n->next();
            allocator_.freeAff(n);
            n = next;
        }
    }
    allocator_.freeAff(heads_);
}

void
DynamicGraph::addEdge(graph::VertexId u, graph::VertexId v)
{
    if (u >= numVertices_ || v >= numVertices_)
        SIM_FATAL("ds", "dynamic graph: edge (%u, %u) out of range", u, v);
    LinkedCsrNode *head = heads_[u];
    if (!head || head->count() >= edgesPerNode_) {
        // New head node placed near the destination vertex (and the
        // chain it will link to).
        void *raw;
        if (useAffinity_) {
            const void *aff[2] = {
                vertexArray_ + std::uint64_t(v) * vertexElemSize_,
                head};
            raw = allocator_.mallocAff(64, head ? 2 : 1, aff);
        } else {
            raw = allocator_.mallocAff(64, 0, nullptr);
        }
        auto *node = new (raw) LinkedCsrNode;
        node->setNext(head);
        heads_[u] = node;
        head = node;
        ++numNodes_;
    }
    head->payload()[head->count()] = v;
    head->setCount(head->count() + 1);
    ++degrees_[u];
    ++numEdges_;
}

bool
DynamicGraph::removeEdge(graph::VertexId u, graph::VertexId v)
{
    LinkedCsrNode *head = heads_[u];
    for (LinkedCsrNode *n = head; n; n = n->next()) {
        for (std::uint32_t i = 0; i < n->count(); ++i) {
            if (n->dst(i) != v)
                continue;
            // Swap with the last entry of the head node (the chain's
            // only partially-filled node), then shrink.
            n->payload()[i] = head->payload()[head->count() - 1];
            head->setCount(head->count() - 1);
            if (head->count() == 0) {
                heads_[u] = head->next();
                allocator_.freeAff(head);
                --numNodes_;
            }
            --degrees_[u];
            --numEdges_;
            return true;
        }
    }
    return false;
}

bool
DynamicGraph::hasEdge(graph::VertexId u, graph::VertexId v) const
{
    for (const LinkedCsrNode *n = heads_[u]; n; n = n->next())
        for (std::uint32_t i = 0; i < n->count(); ++i)
            if (n->dst(i) == v)
                return true;
    return false;
}

graph::Csr
DynamicGraph::toCsr() const
{
    std::vector<graph::Edge> edges;
    edges.reserve(numEdges_);
    for (graph::VertexId u = 0; u < numVertices_; ++u)
        for (const LinkedCsrNode *n = heads_[u]; n; n = n->next())
            for (std::uint32_t i = 0; i < n->count(); ++i)
                edges.push_back(graph::Edge{u, n->dst(i), 1});
    return graph::buildCsr(numVertices_, std::move(edges), false, false);
}

double
DynamicGraph::averageNodeToDestDistance(nsc::Machine &machine) const
{
    double sum = 0.0;
    std::uint64_t count = 0;
    for (graph::VertexId u = 0; u < numVertices_; ++u) {
        for (const LinkedCsrNode *n = heads_[u]; n; n = n->next()) {
            const BankId nb = machine.bankOfHost(n);
            for (std::uint32_t i = 0; i < n->count(); ++i) {
                const BankId vb = machine.bankOfHost(
                    vertexArray_ +
                    std::uint64_t(n->dst(i)) * vertexElemSize_);
                sum += machine.hopsBetween(nb, vb);
                ++count;
            }
        }
    }
    return count == 0 ? 0.0 : sum / double(count);
}

} // namespace affalloc::ds
