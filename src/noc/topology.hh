/**
 * @file
 * Mesh topology: tile coordinates, Manhattan distances and X-Y routes.
 * Shared by the network model, the allocator runtime (which receives
 * topology from the OS) and the stream engines.
 */

#ifndef AFFALLOC_NOC_TOPOLOGY_HH
#define AFFALLOC_NOC_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace affalloc::noc
{

/** Output port direction of a router. */
enum class Direction : std::uint8_t { east = 0, west = 1, north = 2,
                                      south = 3 };

/** Directed link identifier: source tile x 4 + direction. */
using LinkId = std::uint32_t;

/**
 * A 2D mesh of tiles. Tiles are numbered row-major: tile = y*X + x.
 * L3 banks map 1:1 onto tiles in this machine, so BankId and TileId
 * are interchangeable through this class.
 */
class Mesh
{
  public:
    /** Construct an X-by-Y mesh. */
    Mesh(std::uint32_t x_dim, std::uint32_t y_dim);

    /** Mesh width. */
    std::uint32_t xDim() const { return xDim_; }
    /** Mesh height. */
    std::uint32_t yDim() const { return yDim_; }
    /** Number of tiles. */
    std::uint32_t numTiles() const { return xDim_ * yDim_; }
    /** Number of directed link slots (4 per tile; edge slots unused). */
    std::uint32_t numLinks() const { return numTiles() * 4; }

    /** X coordinate of a tile. */
    std::uint32_t xOf(TileId t) const { return t % xDim_; }
    /** Y coordinate of a tile. */
    std::uint32_t yOf(TileId t) const { return t / xDim_; }
    /** Tile at coordinates (x, y). */
    TileId
    tileAt(std::uint32_t x, std::uint32_t y) const
    {
        return y * xDim_ + x;
    }

    /** Manhattan hop distance between two tiles. */
    std::uint32_t
    distance(TileId a, TileId b) const
    {
        const std::uint32_t nt = xDim_ * yDim_;
        if (a < nt && b < nt && !dist_.empty())
            return dist_[std::size_t(a) * nt + b];
        return computeDistance(a, b);
    }

    /**
     * Append the directed links of the X-Y route from @p src to
     * @p dst to @p out. The number of links equals distance(src,dst).
     */
    void route(TileId src, TileId dst, std::vector<LinkId> &out) const;

    /** The directed link leaving @p tile in @p dir. */
    static LinkId
    linkOf(TileId tile, Direction dir)
    {
        return tile * 4 + static_cast<LinkId>(dir);
    }

    /** Tiles hosting the DRAM controllers (the four mesh corners). */
    std::vector<TileId> cornerTiles() const;

    /**
     * Average Manhattan distance from @p tile to every tile in the
     * mesh (used to reason about placement quality).
     */
    double averageDistanceFrom(TileId tile) const;

  private:
    /** Largest mesh for which the distance table is precomputed. */
    static constexpr std::uint32_t distTableMaxTiles = 1024;

    std::uint32_t
    computeDistance(TileId a, TileId b) const
    {
        const auto ax = a % xDim_, ay = a / xDim_;
        const auto bx = b % xDim_, by = b / xDim_;
        return (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
    }

    std::uint32_t xDim_;
    std::uint32_t yDim_;
    /**
     * Precomputed all-pairs hop distances (numTiles x numTiles,
     * row-major by source). distance() is on the hot path of both the
     * allocator's bank scoring and the network model, so the ctor
     * tabulates it for any realistically sized mesh; empty (fall back
     * to computeDistance) beyond distTableMaxTiles tiles.
     */
    std::vector<std::uint16_t> dist_;
};

} // namespace affalloc::noc

#endif // AFFALLOC_NOC_TOPOLOGY_HH
