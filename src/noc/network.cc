#include "noc/network.hh"

#include <algorithm>
#include <numeric>

#include "sim/log.hh"
#include "sim/prof.hh"

namespace affalloc::noc
{

void
NetDelta::reset(std::size_t num_entries)
{
    messages.fill(0);
    hops.fill(0);
    flitHops.fill(0);
    degradedLinkFlits = 0;
    flits = 0;
    routeShadow = 0;
    linkFlits.assign(num_entries, 0);
}

Network::Network(const sim::MachineConfig &cfg, sim::Stats &stats)
    : cfg_(cfg), stats_(stats), mesh_(cfg.meshX, cfg.meshY),
      epochLinkFlits_(mesh_.numLinks() + 2 * mesh_.numTiles(), 0),
      lifetimeLinkFlits_(mesh_.numLinks() + 2 * mesh_.numTiles(), 0)
{
    const std::uint32_t nt = mesh_.numTiles();
    if (nt <= routeTableMaxTiles) {
        routeOffset_.resize(std::size_t(nt) * nt + 1);
        std::uint64_t total_links = 0;
        for (TileId src = 0; src < nt; ++src)
            for (TileId dst = 0; dst < nt; ++dst)
                total_links += mesh_.distance(src, dst);
        routeLinks_.reserve(total_links);
        for (TileId src = 0; src < nt; ++src) {
            for (TileId dst = 0; dst < nt; ++dst) {
                routeOffset_[std::size_t(src) * nt + dst] =
                    static_cast<std::uint32_t>(routeLinks_.size());
                mesh_.route(src, dst, routeLinks_);
            }
        }
        routeOffset_.back() = static_cast<std::uint32_t>(routeLinks_.size());
    }
}

std::uint32_t
Network::injectPort(TileId tile) const
{
    return mesh_.numLinks() + 2 * tile;
}

std::uint32_t
Network::ejectPort(TileId tile) const
{
    return mesh_.numLinks() + 2 * tile + 1;
}

Cycles
Network::send(TileId src, TileId dst, std::uint32_t bytes, TrafficClass tc)
{
    const int c = static_cast<int>(tc);
    const std::uint32_t hop_count = mesh_.distance(src, dst);
    const std::uint32_t flits = flitsFor(bytes);

    stats_.messages[c] += 1;
    stats_.hops[c] += hop_count;
    stats_.flitHops[c] += std::uint64_t(flits) * hop_count;

    if (hop_count != 0) {
        chargeRoute(src, dst, flits);
        // Endpoint local ports: one tile can inject/eject at most one
        // flit per cycle, which bounds hot endpoints (e.g. a core
        // sinking every response, or a contended tail-pointer bank).
        epochLinkFlits_[injectPort(src)] += flits;
        lifetimeLinkFlits_[injectPort(src)] += flits;
        noteEpochFlits(injectPort(src));
        epochLinkFlits_[ejectPort(dst)] += flits;
        lifetimeLinkFlits_[ejectPort(dst)] += flits;
        noteEpochFlits(ejectPort(dst));
        epochFlits_ += flits;
    }
    // Unloaded latency: route traversal plus serialization of the
    // remaining flits behind the head flit.
    return Cycles(hop_count) * cfg_.hopLatency + (flits - 1);
}

Cycles
Network::sendDelta(TileId src, TileId dst, std::uint32_t bytes,
                   TrafficClass tc, NetDelta &d) const
{
    const int c = static_cast<int>(tc);
    const std::uint32_t hop_count = mesh_.distance(src, dst);
    const std::uint32_t flits = flitsFor(bytes);

    d.messages[c] += 1;
    d.hops[c] += hop_count;
    d.flitHops[c] += std::uint64_t(flits) * hop_count;

    if (hop_count != 0) {
        chargeRouteDelta(src, dst, flits, d);
        d.linkFlits[injectPort(src)] += flits;
        d.linkFlits[ejectPort(dst)] += flits;
        d.flits += flits;
    }
    return Cycles(hop_count) * cfg_.hopLatency + (flits - 1);
}

void
Network::mergeDelta(const NetDelta &d)
{
    PROF_SCOPE("noc/net.merge_delta");
    for (int c = 0; c < numTrafficClasses; ++c) {
        stats_.messages[c] += d.messages[c];
        stats_.hops[c] += d.hops[c];
        stats_.flitHops[c] += d.flitHops[c];
    }
    stats_.degradedLinkFlits += d.degradedLinkFlits;
    for (std::size_t i = 0; i < epochLinkFlits_.size(); ++i) {
        epochLinkFlits_[i] += d.linkFlits[i];
        lifetimeLinkFlits_[i] += d.linkFlits[i];
    }
    epochFlits_ += d.flits;
    epochRouteFlitsShadow_ += d.routeShadow;
}

void
Network::refreshEpochMax()
{
    epochMaxLinkFlits_ =
        *std::max_element(epochLinkFlits_.begin(), epochLinkFlits_.end());
}

void
Network::chargeLink(LinkId link, std::uint32_t flits)
{
    std::uint64_t charged = flits;
    if (faults_ != nullptr) {
        const std::uint32_t mult = faults_->linkFlitMultiplier(link);
        if (mult > 1) {
            charged = std::uint64_t(flits) * mult;
            stats_.degradedLinkFlits += charged - flits;
        }
    }
    epochLinkFlits_[link] += charged;
    lifetimeLinkFlits_[link] += charged;
    noteEpochFlits(link);
    epochRouteFlitsShadow_ += charged;
}

void
Network::chargeLinkDelta(LinkId link, std::uint32_t flits,
                         NetDelta &d) const
{
    std::uint64_t charged = flits;
    if (faults_ != nullptr) {
        const std::uint32_t mult = faults_->linkFlitMultiplier(link);
        if (mult > 1) {
            charged = std::uint64_t(flits) * mult;
            d.degradedLinkFlits += charged - flits;
        }
    }
    d.linkFlits[link] += charged;
    d.routeShadow += charged;
}

void
Network::chargeRouteDelta(TileId src, TileId dst, std::uint32_t flits,
                          NetDelta &d) const
{
    if (referenceMode_ || routeOffset_.empty()) {
        chargeRouteWalkDelta(src, dst, flits, d);
        return;
    }
    const std::size_t pair = std::size_t(src) * mesh_.numTiles() + dst;
    const std::uint32_t end = routeOffset_[pair + 1];
    for (std::uint32_t i = routeOffset_[pair]; i < end; ++i)
        chargeLinkDelta(routeLinks_[i], flits, d);
}

void
Network::chargeRouteWalkDelta(TileId src, TileId dst, std::uint32_t flits,
                              NetDelta &d) const
{
    std::uint32_t x = mesh_.xOf(src);
    std::uint32_t y = mesh_.yOf(src);
    const std::uint32_t tx = mesh_.xOf(dst);
    const std::uint32_t ty = mesh_.yOf(dst);
    while (x != tx) {
        const Direction dir = x < tx ? Direction::east : Direction::west;
        chargeLinkDelta(Mesh::linkOf(mesh_.tileAt(x, y), dir), flits, d);
        x = x < tx ? x + 1 : x - 1;
    }
    while (y != ty) {
        const Direction dir = y < ty ? Direction::south : Direction::north;
        chargeLinkDelta(Mesh::linkOf(mesh_.tileAt(x, y), dir), flits, d);
        y = y < ty ? y + 1 : y - 1;
    }
}

void
Network::chargeRoute(TileId src, TileId dst, std::uint32_t flits)
{
    if (referenceMode_ || routeOffset_.empty()) {
        chargeRouteWalk(src, dst, flits);
        return;
    }
    const std::size_t pair = std::size_t(src) * mesh_.numTiles() + dst;
    const std::uint32_t end = routeOffset_[pair + 1];
    for (std::uint32_t i = routeOffset_[pair]; i < end; ++i)
        chargeLink(routeLinks_[i], flits);
}

void
Network::chargeRouteWalk(TileId src, TileId dst, std::uint32_t flits)
{
    std::uint32_t x = mesh_.xOf(src);
    std::uint32_t y = mesh_.yOf(src);
    const std::uint32_t tx = mesh_.xOf(dst);
    const std::uint32_t ty = mesh_.yOf(dst);
    while (x != tx) {
        const Direction dir = x < tx ? Direction::east : Direction::west;
        chargeLink(Mesh::linkOf(mesh_.tileAt(x, y), dir), flits);
        x = x < tx ? x + 1 : x - 1;
    }
    while (y != ty) {
        const Direction dir = y < ty ? Direction::south : Direction::north;
        chargeLink(Mesh::linkOf(mesh_.tileAt(x, y), dir), flits);
        y = y < ty ? y + 1 : y - 1;
    }
}

std::uint64_t
Network::totalLinkFlits() const
{
    return std::accumulate(epochLinkFlits_.begin(), epochLinkFlits_.end(),
                           std::uint64_t(0));
}

void
Network::resetEpoch()
{
    std::fill(epochLinkFlits_.begin(), epochLinkFlits_.end(), 0);
    epochFlits_ = 0;
    epochMaxLinkFlits_ = 0;
    epochRouteFlitsShadow_ = 0;
}

void
Network::auditConservation(simcheck::CheckContext &ctx) const
{
    std::uint64_t route = 0;
    for (std::uint32_t l = 0; l < mesh_.numLinks(); ++l)
        route += epochLinkFlits_[l];
    if (route != epochRouteFlitsShadow_) {
        ctx.failf("route-link flits %llu != %llu charged this epoch "
                  "(flits lost or duplicated in transit)",
                  static_cast<unsigned long long>(route),
                  static_cast<unsigned long long>(epochRouteFlitsShadow_));
    }
    std::uint64_t injected = 0, ejected = 0;
    for (TileId t = 0; t < mesh_.numTiles(); ++t) {
        injected += epochLinkFlits_[injectPort(t)];
        ejected += epochLinkFlits_[ejectPort(t)];
    }
    if (injected != epochFlits_) {
        ctx.failf("inject-port flits %llu != %llu injected this epoch",
                  static_cast<unsigned long long>(injected),
                  static_cast<unsigned long long>(epochFlits_));
    }
    if (ejected != epochFlits_) {
        ctx.failf("eject-port flits %llu != %llu injected this epoch "
                  "(flits vanished before delivery)",
                  static_cast<unsigned long long>(ejected),
                  static_cast<unsigned long long>(epochFlits_));
    }
}

void
Network::corruptLinkFlitsForTest(std::uint32_t index, std::int64_t delta)
{
    SIM_CHECK("noc", index < epochLinkFlits_.size(),
              "corruptLinkFlitsForTest: index %u out of range", index);
    epochLinkFlits_[index] =
        static_cast<std::uint64_t>(
            static_cast<std::int64_t>(epochLinkFlits_[index]) + delta);
    // A corruption may lower the busiest entry; the running max must
    // track the counters it summarizes.
    refreshEpochMax();
}

} // namespace affalloc::noc
