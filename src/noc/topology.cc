#include "noc/topology.hh"

#include "sim/log.hh"

namespace affalloc::noc
{

Mesh::Mesh(std::uint32_t x_dim, std::uint32_t y_dim)
    : xDim_(x_dim), yDim_(y_dim)
{
    if (x_dim == 0 || y_dim == 0)
        SIM_FATAL("noc", "mesh dimensions must be nonzero (%ux%u)", x_dim, y_dim);
    const std::uint32_t nt = numTiles();
    if (nt <= distTableMaxTiles) {
        dist_.resize(std::size_t(nt) * nt);
        for (TileId a = 0; a < nt; ++a)
            for (TileId b = 0; b < nt; ++b)
                dist_[std::size_t(a) * nt + b] =
                    static_cast<std::uint16_t>(computeDistance(a, b));
    }
}

void
Mesh::route(TileId src, TileId dst, std::vector<LinkId> &out) const
{
    if (src >= numTiles() || dst >= numTiles())
        SIM_PANIC("noc", "route endpoints out of range (%u -> %u)", src, dst);
    std::uint32_t x = xOf(src);
    std::uint32_t y = yOf(src);
    const std::uint32_t tx = xOf(dst);
    const std::uint32_t ty = yOf(dst);
    // X-Y dimension-ordered routing: fully resolve X, then Y.
    while (x != tx) {
        const Direction dir = x < tx ? Direction::east : Direction::west;
        out.push_back(linkOf(tileAt(x, y), dir));
        x = x < tx ? x + 1 : x - 1;
    }
    while (y != ty) {
        const Direction dir = y < ty ? Direction::south : Direction::north;
        out.push_back(linkOf(tileAt(x, y), dir));
        y = y < ty ? y + 1 : y - 1;
    }
}

std::vector<TileId>
Mesh::cornerTiles() const
{
    return {tileAt(0, 0), tileAt(xDim_ - 1, 0), tileAt(0, yDim_ - 1),
            tileAt(xDim_ - 1, yDim_ - 1)};
}

double
Mesh::averageDistanceFrom(TileId tile) const
{
    double sum = 0.0;
    for (TileId t = 0; t < numTiles(); ++t)
        sum += distance(tile, t);
    return sum / numTiles();
}

} // namespace affalloc::noc
