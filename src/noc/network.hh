/**
 * @file
 * Flit-accurate accounting model of the mesh interconnect. Messages
 * charge flits to every directed link on their X-Y route; per-epoch
 * link occupancy drives the contention term of the timing model and
 * per-class hop counters drive the paper's traffic figures.
 */

#ifndef AFFALLOC_NOC_NETWORK_HH
#define AFFALLOC_NOC_NETWORK_HH

#include <cstdint>
#include <vector>

#include "noc/topology.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/simcheck.hh"
#include "sim/stats.hh"

namespace affalloc::noc
{

/**
 * Private traffic accumulator for shard-parallel epoch replay: one
 * replay worker charges all of its shard's messages here instead of
 * the shared counters, and the machine folds the deltas back in fixed
 * worker order at the epoch barrier. Every field mirrors the integer
 * counter send() would have bumped, so the fold is exact regardless
 * of which worker carried which message.
 */
struct NetDelta
{
    /** Per-class message counters (mirror sim::Stats). */
    std::array<std::uint64_t, numTrafficClasses> messages{};
    std::array<std::uint64_t, numTrafficClasses> hops{};
    std::array<std::uint64_t, numTrafficClasses> flitHops{};
    /** Extra flits charged on degraded links (Stats counter). */
    std::uint64_t degradedLinkFlits = 0;
    /** Flits injected (epochFlits_ contribution). */
    std::uint64_t flits = 0;
    /** Route-link conservation shadow contribution. */
    std::uint64_t routeShadow = 0;
    /**
     * Per-link/port flit deltas, indexed like epochLinkFlits_. The
     * same delta feeds the epoch and the lifetime counters (send()
     * charges both identically).
     */
    std::vector<std::uint64_t> linkFlits;

    /** Zero all counters, sizing linkFlits to @p num_entries. */
    void reset(std::size_t num_entries);
};

/**
 * The interconnect model. Owns per-link epoch occupancy counters and
 * writes traffic statistics into a shared Stats block.
 */
class Network
{
  public:
    /** Build the network for a machine config, writing into @p stats. */
    Network(const sim::MachineConfig &cfg, sim::Stats &stats);

    /** The topology in use. */
    const Mesh &mesh() const { return mesh_; }

    /**
     * Attach a fault plan; degraded links occupy proportionally more
     * flit-cycles per message. Pass nullptr to detach.
     */
    void setFaultPlan(const sim::FaultPlan *plan) { faults_ = plan; }

    /**
     * Inject one message of @p bytes payload from @p src to @p dst.
     * Charges flits to every link of the X-Y route and updates the
     * per-class counters. Local (src == dst) messages cost no hops.
     *
     * @return the unloaded latency of this message in cycles
     *         (hops x hop latency + serialization).
     */
    Cycles send(TileId src, TileId dst, std::uint32_t bytes,
                TrafficClass tc);

    /**
     * What send() would return for this message, charging nothing.
     * The unloaded latency is load-independent, so deferred-epoch
     * recording can hand exact latencies to callers before the
     * traffic itself is replayed.
     */
    Cycles
    latencyOf(TileId src, TileId dst, std::uint32_t bytes) const
    {
        return Cycles(mesh_.distance(src, dst)) * cfg_.hopLatency +
               (flitsFor(bytes) - 1);
    }

    /**
     * send() into a private delta instead of the shared counters
     * (shard-parallel epoch replay). Thread-safe: reads only immutable
     * routing state and the fault plan's stable multipliers.
     */
    Cycles sendDelta(TileId src, TileId dst, std::uint32_t bytes,
                     TrafficClass tc, NetDelta &d) const;

    /** Number of entries a NetDelta's linkFlits needs for this mesh. */
    std::size_t numLinkEntries() const { return epochLinkFlits_.size(); }

    /**
     * Fold one replay worker's delta into the shared counters. Called
     * in fixed worker order at the epoch barrier; integer adds, so the
     * result equals serial execution. Call refreshEpochMax() after the
     * last fold.
     */
    void mergeDelta(const NetDelta &d);

    /** Recompute the running epoch max by scanning (post-merge). */
    void refreshEpochMax();

    /** Flits queued on the busiest link during the current epoch. */
    std::uint64_t maxLinkFlits() const { return epochMaxLinkFlits_; }

    /** Total flits injected during the current epoch. */
    std::uint64_t epochFlits() const { return epochFlits_; }

    /** Sum of per-link epoch occupancy (for utilization reporting). */
    std::uint64_t totalLinkFlits() const;

    /** Clear per-epoch link occupancy (call at epoch boundaries). */
    void resetEpoch();

    /** Number of flits a payload of @p bytes occupies. */
    std::uint32_t
    flitsFor(std::uint32_t bytes) const
    {
        const std::uint32_t fb = cfg_.flitBytes();
        return bytes == 0 ? 1 : (bytes + fb - 1) / fb;
    }

    /** Accumulated per-link flits over the whole run (utilization). */
    const std::vector<std::uint64_t> &lifetimeLinkFlits() const
    {
        return lifetimeLinkFlits_;
    }

    /**
     * SimCheck audit: flit conservation for the current epoch. The
     * route-link occupancy must equal what chargeLink() handed out
     * (no lost or duplicated flits), and every flit injected at a
     * source port must have been ejected at a destination port.
     */
    void auditConservation(simcheck::CheckContext &ctx) const;

    /**
     * Deliberately corrupt one per-epoch link counter (simcheck tests
     * use this to model a dropped/duplicated flit). @p index addresses
     * epochLinkFlits_, i.e. [0, numLinks) are route links.
     */
    void corruptLinkFlitsForTest(std::uint32_t index, std::int64_t delta);

    /**
     * Charge routes by walking the X-Y coordinates each time instead
     * of the precomputed route table (reference mode). The
     * digest-equivalence regression test runs both ways and asserts
     * identical results.
     */
    void setReferenceMode(bool reference) { referenceMode_ = reference; }

  private:
    /** Largest mesh for which the route table is precomputed. */
    static constexpr std::uint32_t routeTableMaxTiles = 256;

    /** Walk the X-Y route charging @p flits to every link. */
    void chargeRoute(TileId src, TileId dst, std::uint32_t flits);
    /** Coordinate-walking chargeRoute (reference / large-mesh path). */
    void chargeRouteWalk(TileId src, TileId dst, std::uint32_t flits);
    /** Charge one link, applying any degraded-link multiplier. */
    void chargeLink(LinkId link, std::uint32_t flits);

    /** chargeRoute / chargeRouteWalk / chargeLink into a delta. */
    void chargeRouteDelta(TileId src, TileId dst, std::uint32_t flits,
                          NetDelta &d) const;
    void chargeRouteWalkDelta(TileId src, TileId dst, std::uint32_t flits,
                              NetDelta &d) const;
    void chargeLinkDelta(LinkId link, std::uint32_t flits,
                         NetDelta &d) const;

    /** Keep the running epoch max current for one charged entry. */
    void
    noteEpochFlits(std::size_t index)
    {
        if (epochLinkFlits_[index] > epochMaxLinkFlits_)
            epochMaxLinkFlits_ = epochLinkFlits_[index];
    }

    /** Index of @p tile's injection (local in) port counter. */
    std::uint32_t injectPort(TileId tile) const;
    /** Index of @p tile's ejection (local out) port counter. */
    std::uint32_t ejectPort(TileId tile) const;

    sim::MachineConfig cfg_;
    sim::Stats &stats_;
    Mesh mesh_;
    /** Optional fault plan (not owned); degraded-link multipliers. */
    const sim::FaultPlan *faults_ = nullptr;
    /** Per-directed-link (and per local port) flits this epoch. The
     *  last 2*numTiles entries are the tile injection/ejection ports:
     *  the router-local interfaces every message crosses at its two
     *  endpoints, which bound how fast one tile can source or sink
     *  traffic. */
    std::vector<std::uint64_t> epochLinkFlits_;
    /** Per-directed-link flits over the whole run. */
    std::vector<std::uint64_t> lifetimeLinkFlits_;
    std::uint64_t epochFlits_ = 0;
    /**
     * Running maximum over epochLinkFlits_, maintained at charge time
     * so endEpoch() reads the bottleneck without scanning ~350
     * counters per epoch. Occupancy only grows within an epoch, so
     * the running max equals the scan.
     */
    std::uint64_t epochMaxLinkFlits_ = 0;
    /** Shadow sum of everything chargeLink() handed to route links
     *  this epoch; auditConservation() checks the links agree. */
    std::uint64_t epochRouteFlitsShadow_ = 0;
    /**
     * Precomputed X-Y routes, built once from Mesh::route(): the links
     * of the (src, dst) route are
     * routeLinks_[routeOffset_[src*numTiles+dst] ..
     *             routeOffset_[src*numTiles+dst + 1]).
     * Empty (fall back to the coordinate walk) beyond
     * routeTableMaxTiles tiles.
     */
    std::vector<std::uint32_t> routeOffset_;
    std::vector<LinkId> routeLinks_;
    bool referenceMode_ = false;
};

} // namespace affalloc::noc

#endif // AFFALLOC_NOC_NETWORK_HH
