/**
 * @file
 * Graph workloads (Table 3): PageRank (push & pull), BFS
 * (push / pull / direction-switching) and SSSP. Under In-Core and
 * Near-L3 they use the original CSR format with plain-heap layout;
 * under Aff-Alloc they use the co-designed Linked CSR (§5.3),
 * partitioned vertex properties and the spatially distributed queue
 * (Fig. 9). Every run executes functionally and is validated against
 * the reference algorithms.
 */

#ifndef AFFALLOC_WORKLOADS_GRAPH_WORKLOADS_HH
#define AFFALLOC_WORKLOADS_GRAPH_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "workloads/run_context.hh"

namespace affalloc::workloads
{

/** How edges are stored and placed (Fig. 6 limit study vs. §5.3). */
enum class EdgeLayout : std::uint8_t
{
    /** CSR under In-Core/Near-L3, Linked CSR under Aff-Alloc. */
    autoByMode,
    /** Original CSR regardless of mode. */
    csr,
    /** Linked CSR regardless of mode (requires pool allocation). */
    linked,
    /**
     * Fig. 6: the CSR edge array broken into fixed-size chunks, each
     * freely mapped to the bank minimizing its indirect traffic,
     * subject to a 2% load-imbalance cap (footnote 2).
     */
    chunkRemap
};

/** Shared parameters of the graph workloads. */
struct GraphParams
{
    /** The input graph (owned by the caller). */
    const graph::Csr *graph = nullptr;
    /** PageRank iterations (Table 3: 8). */
    int iters = 8;
    /** Linked CSR node size under Aff-Alloc. */
    std::uint32_t nodeBytes = 64;
    /** BFS/SSSP source vertex. */
    graph::VertexId source = 0;
    /** Vertices processed per slice per epoch. */
    std::uint32_t vertexChunk = 2048;
    /** Edge placement scheme. */
    EdgeLayout layout = EdgeLayout::autoByMode;
    /** Chunk size for EdgeLayout::chunkRemap (64 B .. 4 kB). */
    std::uint32_t chunkBytes = 64;
    /**
     * Fig. 6 "Ind-Ideal": model indirect requests as if they were
     * always issued from the target's own bank (zero indirect hops).
     */
    bool idealIndirect = false;
    /**
     * Use the spatially distributed frontier queue under Aff-Alloc
     * (Fig. 9). Disabled for the co-design ablation: Aff-Alloc with a
     * conventional global queue.
     */
    bool useSpatialQueue = true;
};

/** Direction strategy for BFS (§7.2, Fig. 18). */
enum class BfsStrategy : std::uint8_t
{
    pushOnly,
    pullOnly,
    /** GAP-style heuristic (In-Core / Near-L3 default). */
    gapSwitch,
    /** The paper's extended heuristic for Aff-Alloc (§7.2). */
    affSwitch
};

/** Per-iteration BFS observation (Fig. 17 / Fig. 18). */
struct BfsIterSample
{
    /** Total vertices visited after this iteration. */
    std::uint64_t visited = 0;
    /** Vertices visited during this iteration. */
    std::uint64_t active = 0;
    /** Outgoing edges from this iteration's active vertices. */
    std::uint64_t scoutEdges = 0;
    /** Whether this iteration ran push (top-down). */
    bool push = true;
    /** Simulated cycle at which the iteration completed. */
    Cycles endCycle = 0;
};

/** BFS result: the run record plus its iteration trace. */
struct BfsResult
{
    RunResult run;
    std::vector<BfsIterSample> iters;
};

/** PageRank, push-based (atomic scatter; Fig. 2(c)-style streams). */
RunResult runPageRankPush(const RunConfig &rc, const GraphParams &p);
/** Same, on a caller-provided context (tenant co-runs). */
RunResult runPageRankPush(RunContext &ctx, const GraphParams &p);

/** PageRank, pull-based (indirect gather over the transpose). */
RunResult runPageRankPull(const RunConfig &rc, const GraphParams &p);
RunResult runPageRankPull(RunContext &ctx, const GraphParams &p);

/** BFS with the given direction strategy. */
BfsResult runBfs(const RunConfig &rc, const GraphParams &p,
                 BfsStrategy strategy);
BfsResult runBfs(RunContext &ctx, const GraphParams &p,
                 BfsStrategy strategy);

/** Frontier-based SSSP (Bellman-Ford with atomic-min relaxations). */
RunResult runSssp(const RunConfig &rc, const GraphParams &p);
RunResult runSssp(RunContext &ctx, const GraphParams &p);

/**
 * Priority-ordered SSSP on the spatially distributed relaxed priority
 * queue (§4.2: MultiQueues "can also be implemented as one queue per
 * bank"). Pops are approximately shortest-first, which sharply cuts
 * re-relaxations relative to runSssp's FIFO rounds. Aff-Alloc only
 * for the queue placement; baselines use a single global binary heap.
 */
RunResult runSsspPq(const RunConfig &rc, const GraphParams &p);
RunResult runSsspPq(RunContext &ctx, const GraphParams &p);

/** The strategy the paper's evaluation uses for a mode (§7.2). */
BfsStrategy defaultBfsStrategy(ExecMode mode);

} // namespace affalloc::workloads

#endif // AFFALLOC_WORKLOADS_GRAPH_WORKLOADS_HH
