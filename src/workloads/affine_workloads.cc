#include "workloads/affine_workloads.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace affalloc::workloads
{

namespace
{

using nsc::AffineRef;

/** Simulated base address of a recorded allocation. */
Addr
simOf(RunContext &ctx, const void *p)
{
    return ctx.machine.addressSpace().simAddrOf(p);
}

/** AffineRef over a recorded float array with an element offset. */
AffineRef
ref(RunContext &ctx, const void *p, std::int64_t offset = 0,
    std::uint32_t elem = 4)
{
    return AffineRef{simOf(ctx, p), elem, offset};
}

/**
 * Allocate a float array per the run's mode: malloc_aff with the
 * given affinity under Aff-Alloc, plain heap otherwise.
 */
float *
allocFloats(RunContext &ctx, std::uint64_t n, const void *align_to,
            std::int64_t align_x = 0)
{
    if (ctx.affinity()) {
        alloc::AffineArray req;
        req.elem_size = sizeof(float);
        req.num_elem = n;
        req.align_to = align_to;
        req.align_x = align_x;
        return static_cast<float *>(ctx.allocator.mallocAff(req));
    }
    return static_cast<float *>(
        ctx.allocator.allocPlain(n * sizeof(float)));
}

void
preloadAll(RunContext &ctx, std::initializer_list<const void *> arrays,
           std::uint64_t bytes)
{
    for (const void *p : arrays)
        ctx.machine.preloadL3Range(simOf(ctx, p), bytes);
}

} // namespace

// ------------------------------------------------------------- vecadd

RunResult
runVecAdd(const RunConfig &rc, const VecAddParams &p)
{
    RunConfig cfg = rc;
    if (p.layout == VecAddLayout::heapRandom)
        cfg.heapPolicy = os::PagePolicy::random;
    RunContext ctx(cfg);
    return runVecAdd(ctx, p);
}

RunResult
runVecAdd(RunContext &ctx, const VecAddParams &p)
{
    float *a = nullptr;
    float *b = nullptr;
    float *c = nullptr;
    const std::uint64_t bytes = p.n * sizeof(float);
    switch (p.layout) {
      case VecAddLayout::poolDelta:
        a = static_cast<float *>(
            ctx.allocator.allocInterleaved(bytes, 64, 0));
        b = static_cast<float *>(
            ctx.allocator.allocInterleaved(bytes, 64, 0));
        c = static_cast<float *>(
            ctx.allocator.allocInterleaved(bytes, 64, p.deltaBank));
        break;
      case VecAddLayout::heapLinear:
      case VecAddLayout::heapRandom:
        a = static_cast<float *>(ctx.allocator.allocPlain(bytes));
        b = static_cast<float *>(ctx.allocator.allocPlain(bytes));
        c = static_cast<float *>(ctx.allocator.allocPlain(bytes));
        break;
      case VecAddLayout::affinity: {
        // Fig. 8(b): B and C aligned element-for-element with A.
        alloc::AffineArray req;
        req.elem_size = sizeof(float);
        req.num_elem = p.n;
        a = static_cast<float *>(ctx.allocator.mallocAff(req));
        req.align_to = a;
        b = static_cast<float *>(ctx.allocator.mallocAff(req));
        c = static_cast<float *>(ctx.allocator.mallocAff(req));
        break;
      }
    }

    // Functional execution on the host.
    for (std::uint64_t i = 0; i < p.n; ++i) {
        a[i] = static_cast<float>(i % 1024);
        b[i] = static_cast<float>((i * 7) % 512);
    }
    for (std::uint64_t i = 0; i < p.n; ++i)
        c[i] = a[i] + b[i];

    if (p.preload)
        preloadAll(ctx, {a, b, c}, bytes);

    // Timed replay: sa, sb forward into sc (Fig. 2(a)).
    ctx.exec.affineKernel({ref(ctx, a), ref(ctx, b)}, {ref(ctx, c)},
                          p.n, 1.0);

    bool valid = true;
    for (std::uint64_t i = 0; i < p.n; i += 997)
        valid &= c[i] == a[i] + b[i];
    return ctx.finish("vecadd", valid);
}

// --------------------------------------------------------- pathfinder

RunResult
runPathfinder(const RunConfig &rc, const PathfinderParams &p)
{
    RunContext ctx(rc);
    return runPathfinder(ctx, p);
}

RunResult
runPathfinder(RunContext &ctx, const PathfinderParams &p)
{
    const std::uint64_t n = p.cols;

    // wall[iters][cols] with intra-array row affinity; src/dst
    // aligned to the wall (Fig. 8(c) pattern).
    float *wall = allocFloats(ctx, std::uint64_t(p.iters) * n, nullptr,
                              static_cast<std::int64_t>(n));
    float *src = allocFloats(ctx, n, wall);
    float *dst = allocFloats(ctx, n, wall);

    Rng rng(21);
    for (std::uint64_t i = 0; i < std::uint64_t(p.iters) * n; ++i)
        wall[i] = static_cast<float>(rng.below(10));
    for (std::uint64_t i = 0; i < n; ++i)
        src[i] = wall[i];
    preloadAll(ctx, {src, dst}, n * sizeof(float));
    preloadAll(ctx, {wall}, std::uint64_t(p.iters) * n * sizeof(float));

    for (int t = 1; t < p.iters; ++t) {
        const float *row = wall + std::uint64_t(t) * n;
        // Host-functional DP step.
        for (std::uint64_t i = 0; i < n; ++i) {
            float best = src[i];
            if (i > 0)
                best = std::min(best, src[i - 1]);
            if (i + 1 < n)
                best = std::min(best, src[i + 1]);
            dst[i] = row[i] + best;
        }
        // Timed replay: loads src[i-1..i+1] + wall row, store dst.
        ctx.exec.affineKernel(
            {ref(ctx, src, -1), ref(ctx, src, 0), ref(ctx, src, +1),
             ref(ctx, row)},
            {ref(ctx, dst)}, n, 4.0, "iter");
        std::swap(src, dst);
    }

    // Validate against an independent host recomputation.
    std::vector<float> check(wall, wall + n);
    std::vector<float> next(n);
    for (int t = 1; t < p.iters; ++t) {
        const float *row = wall + std::uint64_t(t) * n;
        for (std::uint64_t i = 0; i < n; ++i) {
            float best = check[i];
            if (i > 0)
                best = std::min(best, check[i - 1]);
            if (i + 1 < n)
                best = std::min(best, check[i + 1]);
            next[i] = row[i] + best;
        }
        check.swap(next);
    }
    bool valid = true;
    for (std::uint64_t i = 0; i < n; i += 997)
        valid &= src[i] == check[i];
    return ctx.finish("pathfinder", valid);
}

// ------------------------------------------------------------ hotspot

RunResult
runHotspot(const RunConfig &rc, const HotspotParams &p)
{
    RunContext ctx(rc);
    return runHotspot(ctx, p);
}

RunResult
runHotspot(RunContext &ctx, const HotspotParams &p)
{
    const std::uint64_t n = p.rows * p.cols;
    const std::int64_t w = static_cast<std::int64_t>(p.cols);

    float *temp = allocFloats(ctx, n, nullptr, w);
    float *power = allocFloats(ctx, n, temp);
    float *out = allocFloats(ctx, n, temp);

    Rng rng(22);
    for (std::uint64_t i = 0; i < n; ++i) {
        temp[i] = 300.0f + static_cast<float>(rng.uniform());
        power[i] = static_cast<float>(rng.uniform());
    }
    preloadAll(ctx, {temp, power, out}, n * sizeof(float));

    constexpr float cap = 0.2f;
    for (int t = 0; t < p.iters; ++t) {
        for (std::uint64_t i = 0; i < n; ++i) {
            const float up = i >= p.cols ? temp[i - p.cols] : temp[i];
            const float down =
                i + p.cols < n ? temp[i + p.cols] : temp[i];
            const float left = i % p.cols ? temp[i - 1] : temp[i];
            const float right =
                (i + 1) % p.cols ? temp[i + 1] : temp[i];
            out[i] = temp[i] +
                     cap * (power[i] +
                            (up + down + left + right - 4.0f * temp[i]));
        }
        ctx.exec.affineKernel(
            {ref(ctx, temp, -w), ref(ctx, temp, +w), ref(ctx, temp, -1),
             ref(ctx, temp, +1), ref(ctx, temp, 0), ref(ctx, power)},
            {ref(ctx, out)}, n, 8.0, "iter");
        std::swap(temp, out);
    }

    bool valid = true;
    for (std::uint64_t i = p.cols + 1; i < n - p.cols - 1; i += 99991)
        valid &= std::isfinite(temp[i]) && temp[i] > 250.0f;
    return ctx.finish("hotspot", valid);
}

// --------------------------------------------------------------- srad

RunResult
runSrad(const RunConfig &rc, const SradParams &p)
{
    RunContext ctx(rc);
    return runSrad(ctx, p);
}

RunResult
runSrad(RunContext &ctx, const SradParams &p)
{
    const std::uint64_t n = p.rows * p.cols;
    const std::int64_t w = static_cast<std::int64_t>(p.cols);

    float *img = allocFloats(ctx, n, nullptr, w);
    float *coef = allocFloats(ctx, n, img);
    float *out = allocFloats(ctx, n, img);

    Rng rng(23);
    for (std::uint64_t i = 0; i < n; ++i)
        img[i] = static_cast<float>(rng.uniform()) + 0.1f;
    preloadAll(ctx, {img, coef, out}, n * sizeof(float));

    constexpr float lambda = 0.125f;
    for (int t = 0; t < p.iters; ++t) {
        // Pass 1: diffusion coefficient from image gradients.
        for (std::uint64_t i = 0; i < n; ++i) {
            const float c = img[i];
            const float dn = (i >= p.cols ? img[i - p.cols] : c) - c;
            const float ds = (i + p.cols < n ? img[i + p.cols] : c) - c;
            const float dw_ = (i % p.cols ? img[i - 1] : c) - c;
            const float de = ((i + 1) % p.cols ? img[i + 1] : c) - c;
            const float g2 =
                (dn * dn + ds * ds + dw_ * dw_ + de * de) / (c * c);
            coef[i] = 1.0f / (1.0f + g2);
        }
        ctx.exec.affineKernel(
            {ref(ctx, img, -w), ref(ctx, img, +w), ref(ctx, img, -1),
             ref(ctx, img, +1), ref(ctx, img, 0)},
            {ref(ctx, coef)}, n, 12.0, "coef");
        // Pass 2: divergence update.
        for (std::uint64_t i = 0; i < n; ++i) {
            const float c = img[i];
            const float cn = i >= p.cols ? coef[i - p.cols] : coef[i];
            const float cw_ = i % p.cols ? coef[i - 1] : coef[i];
            const float div =
                coef[i] * ((i + p.cols < n ? img[i + p.cols] : c) - c) +
                cn * ((i >= p.cols ? img[i - p.cols] : c) - c) +
                coef[i] * (((i + 1) % p.cols ? img[i + 1] : c) - c) +
                cw_ * ((i % p.cols ? img[i - 1] : c) - c);
            out[i] = c + lambda * div;
        }
        ctx.exec.affineKernel(
            {ref(ctx, coef, -w), ref(ctx, coef, -1), ref(ctx, coef, 0),
             ref(ctx, img, -w), ref(ctx, img, +w), ref(ctx, img, -1),
             ref(ctx, img, +1), ref(ctx, img, 0)},
            {ref(ctx, out)}, n, 10.0, "update");
        std::swap(img, out);
    }

    bool valid = true;
    for (std::uint64_t i = 0; i < n; i += 99991)
        valid &= std::isfinite(img[i]);
    return ctx.finish("srad", valid);
}

// ----------------------------------------------------------- hotspot3D

RunResult
runHotspot3d(const RunConfig &rc, const Hotspot3dParams &p)
{
    RunContext ctx(rc);
    return runHotspot3d(ctx, p);
}

RunResult
runHotspot3d(RunContext &ctx, const Hotspot3dParams &p)
{
    const std::uint64_t plane = p.nx * p.ny;
    const std::uint64_t n = plane * p.nz;
    const std::int64_t w = static_cast<std::int64_t>(p.nx);
    const std::int64_t pl = static_cast<std::int64_t>(plane);

    float *temp = allocFloats(ctx, n, nullptr, w);
    float *power = allocFloats(ctx, n, temp);
    float *out = allocFloats(ctx, n, temp);

    Rng rng(24);
    for (std::uint64_t i = 0; i < n; ++i) {
        temp[i] = 300.0f + static_cast<float>(rng.uniform());
        power[i] = static_cast<float>(rng.uniform());
    }
    preloadAll(ctx, {temp, power, out}, n * sizeof(float));

    constexpr float cc = 0.1f;
    for (int t = 0; t < p.iters; ++t) {
        for (std::uint64_t i = 0; i < n; ++i) {
            auto at = [&](std::int64_t j) {
                return (j >= 0 && j < std::int64_t(n))
                           ? temp[j]
                           : temp[i];
            };
            const std::int64_t si = static_cast<std::int64_t>(i);
            const float sum = at(si - 1) + at(si + 1) + at(si - w) +
                              at(si + w) + at(si - pl) + at(si + pl);
            out[i] = temp[i] + cc * (power[i] + sum - 6.0f * temp[i]);
        }
        ctx.exec.affineKernel(
            {ref(ctx, temp, -1), ref(ctx, temp, +1), ref(ctx, temp, -w),
             ref(ctx, temp, +w), ref(ctx, temp, -pl),
             ref(ctx, temp, +pl), ref(ctx, temp, 0), ref(ctx, power)},
            {ref(ctx, out)}, n, 10.0, "iter");
        std::swap(temp, out);
    }

    bool valid = true;
    for (std::uint64_t i = 0; i < n; i += 99991)
        valid &= std::isfinite(temp[i]) && temp[i] > 250.0f;
    return ctx.finish("hotspot3D", valid);
}

} // namespace affalloc::workloads
