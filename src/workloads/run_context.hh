/**
 * @file
 * Per-run wiring shared by every workload: one simulated process with
 * its OS, machine, allocator and stream executor, plus the result
 * record benchmarks consume.
 */

#ifndef AFFALLOC_WORKLOADS_RUN_CONTEXT_HH
#define AFFALLOC_WORKLOADS_RUN_CONTEXT_HH

#include <memory>
#include <string>

#include "alloc/affinity_alloc.hh"
#include "nsc/machine.hh"
#include "nsc/stream_executor.hh"
#include "obs/observer.hh"
#include "os/sim_os.hh"
#include "sim/energy.hh"

namespace affalloc::workloads
{

/** How a run is configured (mode + allocator policy + machine). */
struct RunConfig
{
    ExecMode mode = ExecMode::affAlloc;
    alloc::AllocatorOptions allocOpts{};
    os::PagePolicy heapPolicy = os::PagePolicy::linear;
    sim::MachineConfig machine{};
    /** Observability (metrics / tracing / explain); default: all off. */
    obs::ObsConfig obs{};

    /** Convenience: a named baseline/evaluated configuration. */
    static RunConfig
    forMode(ExecMode mode)
    {
        RunConfig rc;
        rc.mode = mode;
        return rc;
    }
};

/** The measured outcome of one workload run. */
struct RunResult
{
    std::string workload;
    std::string label;
    ExecMode mode = ExecMode::affAlloc;
    sim::Stats stats;
    double joules = 0.0;
    double l3MissRate = 0.0;
    double nocUtilization = 0.0;
    bool valid = false;
    sim::Timeline timeline;
    /** Order-insensitive digest of the allocator's placement decisions. */
    std::uint64_t placementDigest = 0;
    /** Spatial counters (empty unless RunConfig::obs.metrics was set). */
    obs::SpatialSnapshot obsSnapshot;

    /** Cycles, the primary metric. */
    Cycles cycles() const { return stats.cycles; }
    /** Total NoC message-hops (traffic metric of the figures). */
    std::uint64_t hops() const { return stats.totalHops(); }
    /**
     * Determinism digest of the whole run: every stats counter folded
     * with the placement digest. Two runs of the same config and seed
     * must produce bit-identical digests (CI asserts this).
     */
    std::uint64_t
    digest() const
    {
        return simcheck::digestOfStats(stats) + placementDigest;
    }
};

/**
 * One simulated process. Construction boots the OS and machine;
 * workloads allocate through `allocator` and emit events through
 * `exec` / `machine`.
 */
struct RunContext
{
    RunConfig config;
    os::SimOS os;
    nsc::Machine machine;
    alloc::AffinityAllocator allocator;
    nsc::StreamExecutor exec;
    /** Enabled instruments, or null when RunConfig::obs is all-off. */
    std::unique_ptr<obs::Observer> observer;

    explicit RunContext(const RunConfig &rc)
        : config(rc), os(rc.machine, rc.heapPolicy),
          machine(rc.machine, os), allocator(machine, rc.allocOpts),
          exec(machine, rc.mode)
    {
        if (config.obs.any()) {
            observer = std::make_unique<obs::Observer>(config.obs);
            machine.attachObserver(observer.get());
            allocator.setExplainer(observer->explainer());
        }
    }

    /** Whether streams offload to L3 in this run. */
    bool offloaded() const { return config.mode != ExecMode::inCore; }
    /** Whether the affinity allocator drives layout in this run. */
    bool affinity() const { return config.mode == ExecMode::affAlloc; }

    /** Package the machine's final state into a result record. */
    RunResult
    finish(const std::string &workload, bool valid)
    {
        RunResult r;
        r.workload = workload;
        r.label = execModeName(config.mode);
        r.mode = config.mode;
        r.stats = machine.stats();
        r.joules = sim::EnergyModel(config.machine)
                       .totalJoules(machine.stats());
        r.l3MissRate = machine.stats().l3MissRate();
        r.nocUtilization = machine.nocUtilization();
        r.valid = valid;
        r.timeline = machine.timeline();
        r.placementDigest = allocator.placementDigest();
        if (observer) {
            if (obs::SpatialMetrics *m = observer->metrics()) {
                m->setLinkFlits(machine.network().lifetimeLinkFlits(),
                                machine.network().mesh().numLinks());
                r.obsSnapshot = m->snapshot();
            }
            // Flush file-backed instruments now so an I/O error fails
            // the run instead of being swallowed at destruction.
            observer->closeOutputs();
        }
        return r;
    }
};

} // namespace affalloc::workloads

#endif // AFFALLOC_WORKLOADS_RUN_CONTEXT_HH
