/**
 * @file
 * Per-run wiring shared by every workload: one simulated process with
 * its OS, machine, allocator and stream executor, plus the result
 * record benchmarks consume.
 */

#ifndef AFFALLOC_WORKLOADS_RUN_CONTEXT_HH
#define AFFALLOC_WORKLOADS_RUN_CONTEXT_HH

#include <memory>
#include <string>

#include "alloc/affinity_alloc.hh"
#include "nsc/machine.hh"
#include "nsc/stream_executor.hh"
#include "obs/observer.hh"
#include "os/sim_os.hh"
#include "sim/energy.hh"
#include "sim/prof.hh"

namespace affalloc::workloads
{

/** How a run is configured (mode + allocator policy + machine). */
struct RunConfig
{
    ExecMode mode = ExecMode::affAlloc;
    alloc::AllocatorOptions allocOpts{};
    os::PagePolicy heapPolicy = os::PagePolicy::linear;
    sim::MachineConfig machine{};
    /** Observability (metrics / tracing / explain); default: all off. */
    obs::ObsConfig obs{};
    /**
     * Cooperative stop signal for open-ended background agents (host
     * traffic / I/O injectors): when non-null and *stopRequested turns
     * true, the agent finishes at its next epoch boundary. Null (the
     * default) for classic workloads, which run to completion.
     */
    const bool *stopRequested = nullptr;

    /** Convenience: a named baseline/evaluated configuration. */
    static RunConfig
    forMode(ExecMode mode)
    {
        RunConfig rc;
        rc.mode = mode;
        return rc;
    }
};

/** The measured outcome of one workload run. */
struct RunResult
{
    std::string workload;
    std::string label;
    ExecMode mode = ExecMode::affAlloc;
    sim::Stats stats;
    double joules = 0.0;
    double l3MissRate = 0.0;
    double nocUtilization = 0.0;
    bool valid = false;
    /**
     * Agent class this result belongs to (report labeling only —
     * deliberately outside digest() so classic digests are stable).
     */
    AgentClass cls = AgentClass::ndc;
    sim::Timeline timeline;
    /** Order-insensitive digest of the allocator's placement decisions. */
    std::uint64_t placementDigest = 0;
    /** Spatial counters (empty unless RunConfig::obs.metrics was set). */
    obs::SpatialSnapshot obsSnapshot;

    /** Cycles, the primary metric. */
    Cycles cycles() const { return stats.cycles; }
    /** Total NoC message-hops (traffic metric of the figures). */
    std::uint64_t hops() const { return stats.totalHops(); }
    /**
     * Determinism digest of the whole run: every stats counter folded
     * with the placement digest. Two runs of the same config and seed
     * must produce bit-identical digests (CI asserts this).
     */
    std::uint64_t
    digest() const
    {
        return simcheck::digestOfStats(stats) + placementDigest;
    }
};

/**
 * One tenant's identity inside a shared-machine co-run. The scheduler
 * owns these; a RunContext in tenant mode borrows one so finish() can
 * attribute only this tenant's share of the shared machine's stats.
 */
struct TenantBinding
{
    /** Tenant index (also its OS arena and RNG substream id). */
    std::uint32_t id = 0;
    /** Instance label, e.g. "bfs#1". */
    std::string name;
    /** Stats accumulated over this tenant's completed quanta. */
    sim::Stats attributed;
    /** Shared-machine stats snapshot at this tenant's last resume. */
    sim::Stats resumeSnapshot;
    /** Shared-clock cycle at which the tenant's workload finished. */
    Cycles finishCycle = 0;
    /**
     * Shared-clock cycle at the end of this tenant's most recent
     * epoch (maintained by the scheduler's epoch hook). finish() uses
     * it so a tenant preempted exactly at its final epoch is not
     * charged for other tenants' epochs that ran before its parked
     * thread got to the bookkeeping.
     */
    Cycles lastEpochCycle = 0;
};

/**
 * One simulated process. Construction boots the OS and machine;
 * workloads allocate through `allocator` and emit events through
 * `exec` / `machine`. In tenant mode (the second constructor) the OS
 * and machine are *borrowed* from a co-run scheduler instead: several
 * RunContexts then share one machine, each with its own allocator
 * arena, and finish() reports the tenant's attributed share.
 */
struct RunContext
{
    RunConfig config;

  private:
    /** Backing storage when this context owns its OS/machine. */
    std::unique_ptr<os::SimOS> ownedOs_;
    std::unique_ptr<nsc::Machine> ownedMachine_;

  public:
    os::SimOS &os;
    nsc::Machine &machine;
    alloc::AffinityAllocator allocator;
    nsc::StreamExecutor exec;
    /** Enabled instruments, or null when RunConfig::obs is all-off. */
    std::unique_ptr<obs::Observer> observer;
    /** Tenant identity, or null for a classic whole-machine run. */
    TenantBinding *tenant = nullptr;

    explicit RunContext(const RunConfig &rc)
        : config(rc),
          ownedOs_(std::make_unique<os::SimOS>(rc.machine, rc.heapPolicy)),
          ownedMachine_(
              std::make_unique<nsc::Machine>(rc.machine, *ownedOs_)),
          os(*ownedOs_), machine(*ownedMachine_),
          allocator(machine, rc.allocOpts), exec(machine, rc.mode)
    {
        if (config.obs.any()) {
            observer = std::make_unique<obs::Observer>(config.obs);
            machine.attachObserver(observer.get());
            allocator.setExplainer(observer->explainer());
        }
    }

    /**
     * Tenant mode: run on a machine owned by the co-run scheduler.
     * @p rc.allocOpts must carry the tenant's arena and the shared
     * load board; @p rc.machine is ignored for construction (the
     * shared machine's config wins) but kept for energy reporting.
     */
    RunContext(const RunConfig &rc, nsc::Machine &shared_machine,
               TenantBinding *binding)
        : config(rc), os(shared_machine.simOs()), machine(shared_machine),
          allocator(machine, rc.allocOpts), exec(machine, rc.mode),
          tenant(binding)
    {
        if (obs::Observer *o = machine.observer())
            allocator.setExplainer(o->explainer());
    }

    /** Whether streams offload to L3 in this run. */
    bool offloaded() const { return config.mode != ExecMode::inCore; }
    /** Whether the affinity allocator drives layout in this run. */
    bool affinity() const { return config.mode == ExecMode::affAlloc; }

    /** Package the machine's final state into a result record. */
    RunResult
    finish(const std::string &workload, bool valid)
    {
        RunResult r;
        r.workload = workload;
        r.label = execModeName(config.mode);
        r.mode = config.mode;
        if (tenant) {
            // Attribute the still-unaccounted tail of the current
            // quantum, then report only this tenant's share. The
            // folded snapshot keeps the scheduler's own accounting
            // consistent when it attributes at the next switch.
            tenant->attributed += machine.stats() -
                                  tenant->resumeSnapshot;
            tenant->resumeSnapshot = machine.stats();
            tenant->finishCycle = tenant->lastEpochCycle
                                      ? tenant->lastEpochCycle
                                      : machine.now();
            r.stats = tenant->attributed;
            // The shared clock advanced for every tenant; this
            // tenant's cycle share is the epochs it executed.
            r.workload = workload;
        } else {
            r.stats = machine.stats();
            r.timeline = machine.timeline();
        }
        r.joules =
            sim::EnergyModel(machine.config()).totalJoules(r.stats);
        r.l3MissRate = r.stats.l3MissRate();
        r.nocUtilization = machine.nocUtilization();
        r.valid = valid;
        r.placementDigest = allocator.placementDigest();
        // Host-side memory telemetry: this run's arena pool footprint
        // high-watermark, plus a fresh RSS sample at run teardown.
        prof::noteArenaFootprint(allocator.arena(),
                                 allocator.footprintBytes());
        prof::rssEpochTick();
        if (observer) {
            if (obs::SpatialMetrics *m = observer->metrics()) {
                m->setLinkFlits(machine.network().lifetimeLinkFlits(),
                                machine.network().mesh().numLinks());
                r.obsSnapshot = m->snapshot();
            }
            // Flush file-backed instruments now so an I/O error fails
            // the run instead of being swallowed at destruction.
            observer->closeOutputs();
        }
        return r;
    }
};

} // namespace affalloc::workloads

#endif // AFFALLOC_WORKLOADS_RUN_CONTEXT_HH
