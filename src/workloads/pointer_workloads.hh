/**
 * @file
 * Pointer-chasing workloads (Table 3): link_list (long list search),
 * hash_join (chained hash probe) and bin_tree (unbalanced BST
 * lookups). Under Aff-Alloc the structures allocate through the
 * irregular affinity API with the configured bank-select policy
 * (Fig. 10 / Eq. 4); baselines use the plain heap.
 */

#ifndef AFFALLOC_WORKLOADS_POINTER_WORKLOADS_HH
#define AFFALLOC_WORKLOADS_POINTER_WORKLOADS_HH

#include <cstdint>

#include "workloads/run_context.hh"

namespace affalloc::workloads
{

/** link_list parameters (Table 3: 512 nodes/list, 1k lists). */
struct LinkListParams
{
    std::uint32_t numLists = 1000;
    std::uint32_t nodesPerList = 512;
    std::uint32_t queriesPerList = 1;
    std::uint64_t seed = 31;
};
RunResult runLinkList(const RunConfig &rc, const LinkListParams &p);
RunResult runLinkList(RunContext &ctx, const LinkListParams &p);

/** hash_join parameters (Table 3: 256k x 512k, hit rate 1/8). */
struct HashJoinParams
{
    std::uint64_t buildRows = 256 * 1024;
    std::uint64_t probeRows = 512 * 1024;
    std::uint64_t numBuckets = 64 * 1024; // chains <= 8
    double hitRate = 1.0 / 8.0;
    std::uint64_t seed = 32;
};
RunResult runHashJoin(const RunConfig &rc, const HashJoinParams &p);
RunResult runHashJoin(RunContext &ctx, const HashJoinParams &p);

/**
 * churn_list parameters: a linked-list search workload whose lists
 * live through repeated replace cycles — each round removes a
 * fraction of every list's front and appends fresh nodes, so freed
 * irregular slots sit on (and recycle through) the allocator's
 * per-bank free lists while epochs keep running. This is the one
 * workload whose free lists are populated mid-run, which makes it
 * the natural prey for fault-keying defects and the backbone of the
 * chaos engine's planted regressions.
 */
struct ChurnListParams
{
    std::uint32_t numLists = 512;
    std::uint32_t nodesPerList = 192;
    /** Query + churn rounds; one search epoch per round. */
    std::uint32_t rounds = 8;
    /** Fraction of each list replaced per round. */
    double churnFraction = 0.5;
    std::uint64_t seed = 34;
};
RunResult runChurnList(const RunConfig &rc, const ChurnListParams &p);
RunResult runChurnList(RunContext &ctx, const ChurnListParams &p);

/** bin_tree parameters (Table 3: 128k nodes, 512k lookups). */
struct BinTreeParams
{
    std::uint64_t numNodes = 128 * 1024;
    std::uint64_t numLookups = 512 * 1024;
    std::uint64_t seed = 33;
};
RunResult runBinTree(const RunConfig &rc, const BinTreeParams &p);
RunResult runBinTree(RunContext &ctx, const BinTreeParams &p);

} // namespace affalloc::workloads

#endif // AFFALLOC_WORKLOADS_POINTER_WORKLOADS_HH
