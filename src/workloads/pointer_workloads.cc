#include "workloads/pointer_workloads.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "ds/pointer_structs.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace affalloc::workloads
{

namespace
{

using ds::AffinityList;
using ds::AffinityTree;
using ds::HashJoinTable;
using ds::ListNode;
using ds::TreeNode;
using nsc::MigratingStream;

/** Simulated address of a node. */
Addr
simOf(RunContext &ctx, const void *p)
{
    return ctx.machine.addressSpace().simAddrOf(p);
}

/**
 * Account an epoch's worth of concurrent pointer chases. Each chase
 * produced a serial chain latency; concurrent chains overlap up to
 * the per-slice concurrency (streams in NSC modes, MLP in-core), so
 * the epoch's latency floor is the max per-slice serialized time.
 */
class ChaseEpoch
{
  public:
    ChaseEpoch(RunContext &ctx, double concurrency)
        : ctx_(ctx), concurrency_(concurrency),
          perSlice_(ctx.config.machine.numTiles(), 0.0)
    {
        ctx_.machine.beginEpoch();
    }

    /** Record one finished chain on @p slice. */
    void
    addChain(std::uint32_t slice, double chain_cycles)
    {
        perSlice_[slice] += chain_cycles;
        maxChain_ = std::max(maxChain_, chain_cycles);
    }

    /** Close the epoch. */
    Cycles
    finish(const std::string &phase)
    {
        double floor = maxChain_;
        for (double s : perSlice_)
            floor = std::max(floor, s / concurrency_);
        return ctx_.machine.endEpoch(floor, phase);
    }

  private:
    RunContext &ctx_;
    double concurrency_;
    std::vector<double> perSlice_;
    double maxChain_ = 0.0;
};

} // namespace

// ----------------------------------------------------------- link_list

RunResult
runLinkList(const RunConfig &rc, const LinkListParams &p)
{
    RunContext ctx(rc);
    return runLinkList(ctx, p);
}

RunResult
runLinkList(RunContext &ctx, const LinkListParams &p)
{
    Rng rng(p.seed);
    const std::uint32_t slices = ctx.config.machine.numTiles();

    // Build the lists (8 B keys; Table 3).
    std::vector<std::unique_ptr<AffinityList>> lists;
    lists.reserve(p.numLists);
    for (std::uint32_t l = 0; l < p.numLists; ++l) {
        auto list =
            std::make_unique<AffinityList>(ctx.allocator, ctx.affinity());
        for (std::uint32_t i = 0; i < p.nodesPerList; ++i)
            list->append(rng.next(), i);
        lists.push_back(std::move(list));
    }
    // Lists are resident after the build.
    for (const auto &list : lists) {
        for (const ListNode *n = list->head(); n; n = n->next)
            ctx.machine.preloadL3Range(simOf(ctx, n), sizeof(ListNode));
    }

    // One query per list: the target sits at a random position, so
    // the traversal length varies per list.
    std::vector<std::uint64_t> targets(p.numLists);
    std::vector<std::uint64_t> expect(p.numLists);
    for (std::uint32_t l = 0; l < p.numLists; ++l) {
        const std::uint32_t pos = static_cast<std::uint32_t>(
            rng.below(p.nodesPerList));
        const ListNode *n = lists[l]->head();
        for (std::uint32_t i = 0; i < pos; ++i)
            n = n->next;
        targets[l] = n->key;
        expect[l] = n->value;
    }

    // Concurrency: every list is an independent stream (NSC) or an
    // independent MLP chain (in-core, bounded by the ROB).
    const double conc =
        ctx.offloaded()
            ? std::max<double>(1.0, double(p.numLists) / slices)
            : ctx.config.machine.robEntries > 0
                  ? ctx.machine.timing().coreMaxMlp
                  : 1.0;

    bool valid = true;
    for (std::uint32_t q = 0; q < p.queriesPerList; ++q) {
        ChaseEpoch epoch(ctx, conc);
        for (std::uint32_t l = 0; l < p.numLists; ++l) {
            const std::uint32_t slice = l % slices;
            MigratingStream st(slice);
            // Fig. 2(b): chase until the comparison hits.
            const ListNode *n = lists[l]->head();
            std::uint64_t found = ~0ull;
            while (n) {
                ctx.exec.streamStep(st, simOf(ctx, n), sizeof(ListNode),
                                    AccessType::read,
                                    /*sequential=*/false);
                ctx.exec.compute(st, 2.0);
                if (n->key == targets[l]) {
                    found = n->value;
                    break;
                }
                n = n->next;
            }
            valid &= found == expect[l];
            epoch.addChain(slice, st.chainLatency());
        }
        epoch.finish("search");
    }
    return ctx.finish("link_list", valid);
}

// ---------------------------------------------------------- churn_list

RunResult
runChurnList(const RunConfig &rc, const ChurnListParams &p)
{
    RunContext ctx(rc);
    return runChurnList(ctx, p);
}

RunResult
runChurnList(RunContext &ctx, const ChurnListParams &p)
{
    Rng rng(p.seed);
    const std::uint32_t slices = ctx.config.machine.numTiles();
    const auto valueOf = [](std::uint64_t key) {
        return key * 0x9e3779b97f4a7c15ULL + 1;
    };

    // Build phase, identical in shape to link_list.
    std::vector<std::unique_ptr<AffinityList>> lists;
    lists.reserve(p.numLists);
    std::uint64_t next_key = 0;
    for (std::uint32_t l = 0; l < p.numLists; ++l) {
        auto list =
            std::make_unique<AffinityList>(ctx.allocator, ctx.affinity());
        for (std::uint32_t i = 0; i < p.nodesPerList; ++i, ++next_key)
            list->append(next_key, valueOf(next_key));
        lists.push_back(std::move(list));
    }
    for (const auto &list : lists) {
        for (const ListNode *n = list->head(); n; n = n->next)
            ctx.machine.preloadL3Range(simOf(ctx, n), sizeof(ListNode));
    }

    const double conc =
        ctx.offloaded()
            ? std::max<double>(1.0, double(p.numLists) / slices)
            : ctx.config.machine.robEntries > 0
                  ? ctx.machine.timing().coreMaxMlp
                  : 1.0;
    const std::uint32_t drop = std::min<std::uint32_t>(
        p.nodesPerList,
        static_cast<std::uint32_t>(p.churnFraction * p.nodesPerList));

    bool valid = true;
    for (std::uint32_t round = 0; round < p.rounds; ++round) {
        // Search epoch over the lists' current membership.
        ChaseEpoch epoch(ctx, conc);
        for (std::uint32_t l = 0; l < p.numLists; ++l) {
            const std::uint32_t slice = l % slices;
            const std::uint32_t pos = static_cast<std::uint32_t>(
                rng.below(lists[l]->size()));
            const ListNode *pick = lists[l]->head();
            for (std::uint32_t i = 0; i < pos; ++i)
                pick = pick->next;
            const std::uint64_t target = pick->key;
            const std::uint64_t expect = pick->value;

            MigratingStream st(slice);
            const ListNode *n = lists[l]->head();
            std::uint64_t found = ~0ull;
            while (n) {
                ctx.exec.streamStep(st, simOf(ctx, n), sizeof(ListNode),
                                    AccessType::read,
                                    /*sequential=*/false);
                ctx.exec.compute(st, 2.0);
                if (n->key == target) {
                    found = n->value;
                    break;
                }
                n = n->next;
            }
            valid &= found == expect;
            epoch.addChain(slice, st.chainLatency());
        }
        epoch.finish("churn-search");

        // Replace cycle: the oldest nodes leave (their slots join the
        // allocator's free lists), fresh ones append and recycle them.
        // No churn after the last search so the final membership is
        // what the epoch above validated.
        if (round + 1 == p.rounds)
            break;
        for (std::uint32_t l = 0; l < p.numLists; ++l) {
            valid &= lists[l]->removeFront(drop) == drop;
            for (std::uint32_t i = 0; i < drop; ++i, ++next_key)
                lists[l]->append(next_key, valueOf(next_key));
        }
    }
    for (std::uint32_t l = 0; l < p.numLists; ++l)
        valid &= lists[l]->size() == p.nodesPerList;
    return ctx.finish("churn_list", valid);
}

// ----------------------------------------------------------- hash_join

RunResult
runHashJoin(const RunConfig &rc, const HashJoinParams &p)
{
    RunContext ctx(rc);
    return runHashJoin(ctx, p);
}

RunResult
runHashJoin(RunContext &ctx, const HashJoinParams &p)
{
    Rng rng(p.seed);
    const std::uint32_t slices = ctx.config.machine.numTiles();

    HashJoinTable table(ctx.allocator, p.numBuckets, ctx.affinity());
    std::vector<std::uint64_t> build_keys(p.buildRows);
    for (std::uint64_t i = 0; i < p.buildRows; ++i) {
        build_keys[i] = rng.next() | 1; // odd keys: probes use even
        table.insert(build_keys[i], i);
    }
    // Preload buckets + chains.
    ctx.machine.preloadL3Range(simOf(ctx, table.bucketHead(0)),
                               p.numBuckets * sizeof(void *));
    for (std::uint64_t b = 0; b < p.numBuckets; ++b) {
        for (const ListNode *n = *table.bucketHead(b); n; n = n->next)
            ctx.machine.preloadL3Range(simOf(ctx, n), sizeof(ListNode));
    }

    // Probe keys: hitRate of them match build keys.
    std::vector<std::uint64_t> probes(p.probeRows);
    std::uint64_t expected_hits = 0;
    for (std::uint64_t i = 0; i < p.probeRows; ++i) {
        if (rng.chance(p.hitRate)) {
            probes[i] = build_keys[rng.below(p.buildRows)];
            ++expected_hits;
        } else {
            probes[i] = rng.next() & ~std::uint64_t(1); // even: miss
        }
    }

    const double conc =
        ctx.offloaded() ? 64.0 : ctx.machine.timing().coreMaxMlp;
    std::uint64_t hits = 0;
    const std::uint64_t chunk = 16384;
    for (std::uint64_t base = 0; base < p.probeRows; base += chunk) {
        ChaseEpoch epoch(ctx, conc);
        const std::uint64_t end =
            std::min(base + chunk, p.probeRows);
        for (std::uint64_t i = base; i < end; ++i) {
            const std::uint32_t slice =
                static_cast<std::uint32_t>(i % slices);
            MigratingStream st(slice);
            const std::uint64_t b = table.bucketOf(probes[i]);
            // Read the bucket head slot, then chase the chain.
            ctx.exec.streamStep(st, simOf(ctx, table.bucketHead(b)), 8,
                                AccessType::read, /*sequential=*/false);
            for (const ListNode *n = *table.bucketHead(b); n;
                 n = n->next) {
                ctx.exec.streamStep(st, simOf(ctx, n), sizeof(ListNode),
                                    AccessType::read,
                                    /*sequential=*/false);
                ctx.exec.compute(st, 2.0);
                if (n->key == probes[i]) {
                    ++hits;
                    break;
                }
            }
            epoch.addChain(slice, st.chainLatency());
            st.resetChain();
        }
        epoch.finish("probe");
    }
    const bool valid = hits == expected_hits;
    return ctx.finish("hash_join", valid);
}

// ------------------------------------------------------------ bin_tree

RunResult
runBinTree(const RunConfig &rc, const BinTreeParams &p)
{
    RunContext ctx(rc);
    return runBinTree(ctx, p);
}

RunResult
runBinTree(RunContext &ctx, const BinTreeParams &p)
{
    Rng rng(p.seed);
    const std::uint32_t slices = ctx.config.machine.numTiles();

    // Random insertion order, no balancing (§6).
    AffinityTree tree(ctx.allocator, ctx.affinity());
    std::vector<std::uint64_t> keys(p.numNodes);
    for (std::uint64_t i = 0; i < p.numNodes; ++i) {
        keys[i] = rng.next();
        tree.insert(keys[i], i);
    }
    // Preload the tree (breadth of lines; the hot top levels would be
    // resident regardless).
    {
        std::vector<const TreeNode *> stack{tree.root()};
        while (!stack.empty()) {
            const TreeNode *n = stack.back();
            stack.pop_back();
            if (!n)
                continue;
            ctx.machine.preloadL3Range(simOf(ctx, n), sizeof(TreeNode));
            stack.push_back(n->left);
            stack.push_back(n->right);
        }
    }

    const double conc =
        ctx.offloaded() ? 64.0 : ctx.machine.timing().coreMaxMlp;
    bool valid = true;
    const std::uint64_t chunk = 16384;
    for (std::uint64_t base = 0; base < p.numLookups; base += chunk) {
        ChaseEpoch epoch(ctx, conc);
        const std::uint64_t end =
            std::min(base + chunk, p.numLookups);
        for (std::uint64_t i = base; i < end; ++i) {
            const std::uint32_t slice =
                static_cast<std::uint32_t>(i % slices);
            const std::uint64_t key = keys[rng.below(p.numNodes)];
            MigratingStream st(slice);
            const TreeNode *n = tree.root();
            std::uint64_t found = ~0ull;
            // SEcore keeps the high-reuse top of the tree in the
            // private caches and only offloads the deep part of the
            // walk (§2.2's offload decision); otherwise every lookup
            // would hammer the root's bank.
            int depth = 0;
            constexpr int core_levels = 8;
            double core_chain = 0.0;
            while (n) {
                if (ctx.offloaded() && depth < core_levels) {
                    const auto out = ctx.machine.coreAccess(
                        slice, simOf(ctx, n), sizeof(TreeNode),
                        AccessType::read, /*prefetch_friendly=*/true);
                    core_chain += double(out.latency);
                    ctx.machine.coreCompute(slice, 2.0);
                } else {
                    ctx.exec.streamStep(st, simOf(ctx, n),
                                        sizeof(TreeNode),
                                        AccessType::read,
                                        /*sequential=*/false);
                    ctx.exec.compute(st, 2.0);
                }
                if (n->key == key) {
                    found = n->value;
                    break;
                }
                n = key < n->key ? n->left : n->right;
                ++depth;
            }
            valid &= found != ~0ull && keys[found] == key;
            epoch.addChain(slice, st.chainLatency() + core_chain);
        }
        epoch.finish("lookup");
    }
    return ctx.finish("bin_tree", valid);
}

} // namespace affalloc::workloads
