/**
 * @file
 * Affine-layout workloads (Table 3): vector addition (the Fig. 3/4
 * motivating kernel) and the Rodinia kernels pathfinder, hotspot,
 * srad and hotspot3D. Each runs functionally on the host and replays
 * its access pattern through the stream executor under the configured
 * mode; under Aff-Alloc the arrays are allocated with inter-/intra-
 * array affinity (Fig. 8), otherwise from the plain heap.
 */

#ifndef AFFALLOC_WORKLOADS_AFFINE_WORKLOADS_HH
#define AFFALLOC_WORKLOADS_AFFINE_WORKLOADS_HH

#include <cstdint>

#include "workloads/run_context.hh"

namespace affalloc::workloads
{

/** How vecadd's arrays are laid out (Fig. 4's sweep). */
enum class VecAddLayout : std::uint8_t
{
    /** All three arrays pool-allocated; C offset by deltaBank. */
    poolDelta,
    /** Plain heap, linear pages (the oblivious default). */
    heapLinear,
    /** Plain heap, randomized page placement (Fig. 4 "Random"). */
    heapRandom,
    /** Affinity-allocated via malloc_aff (what Aff-Alloc does). */
    affinity
};

/** Parameters of the vecadd kernel (Table 3-scale by default). */
struct VecAddParams
{
    std::uint64_t n = 1'500'000;
    VecAddLayout layout = VecAddLayout::affinity;
    /** Bank offset of C relative to A/B under poolDelta. */
    std::uint32_t deltaBank = 0;
    /** Warm the L3 before timing (steady-state studies). */
    bool preload = true;
};

/** C[i] = A[i] + B[i]. */
RunResult runVecAdd(const RunConfig &rc, const VecAddParams &p);
/**
 * Same, on a caller-provided context (tenant co-runs). Note: the
 * heapRandom layout's page-policy override only applies through the
 * RunConfig entry point; a shared machine keeps its boot-time policy.
 */
RunResult runVecAdd(RunContext &ctx, const VecAddParams &p);

/** Rodinia pathfinder: dynamic programming over a 2D wall. */
struct PathfinderParams
{
    std::uint64_t cols = 1'500'000; // Table 3: 1.5M entries
    int iters = 8;
};
RunResult runPathfinder(const RunConfig &rc, const PathfinderParams &p);
RunResult runPathfinder(RunContext &ctx, const PathfinderParams &p);

/** Rodinia hotspot: 5-point stencil with a power term. */
struct HotspotParams
{
    std::uint64_t rows = 2048; // Table 3: 2k x 1k
    std::uint64_t cols = 1024;
    int iters = 8;
};
RunResult runHotspot(const RunConfig &rc, const HotspotParams &p);
RunResult runHotspot(RunContext &ctx, const HotspotParams &p);

/** Rodinia srad: two-pass diffusion stencil. */
struct SradParams
{
    std::uint64_t rows = 1024; // Table 3: 1k x 2k
    std::uint64_t cols = 2048;
    int iters = 8;
};
RunResult runSrad(const RunConfig &rc, const SradParams &p);
RunResult runSrad(RunContext &ctx, const SradParams &p);

/** Rodinia hotspot3D: 7-point stencil over a 3D grid. */
struct Hotspot3dParams
{
    std::uint64_t nx = 256; // Table 3: 256 x 1k x 8
    std::uint64_t ny = 1024;
    std::uint64_t nz = 8;
    int iters = 8;
};
RunResult runHotspot3d(const RunConfig &rc, const Hotspot3dParams &p);
RunResult runHotspot3d(RunContext &ctx, const Hotspot3dParams &p);

} // namespace affalloc::workloads

#endif // AFFALLOC_WORKLOADS_AFFINE_WORKLOADS_HH
