#include "workloads/graph_workloads.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "ds/linked_csr.hh"
#include "ds/spatial_pq.hh"
#include "ds/spatial_queue.hh"
#include "graph/reference.hh"
#include "sim/log.hh"

namespace affalloc::workloads
{

namespace
{

using graph::Csr;
using graph::VertexId;
using nsc::AffineRef;
using nsc::MigratingStream;

constexpr double epochFloor = 120.0;
constexpr float damping = 0.85f;

/** A host array paired with its simulated base address. */
template <typename T>
struct SimArr
{
    T *host = nullptr;
    Addr sim = 0;

    T &operator[](std::uint64_t i) { return host[i]; }
    const T &operator[](std::uint64_t i) const { return host[i]; }
    /** Simulated address of element @p i. */
    Addr at(std::uint64_t i) const { return sim + i * sizeof(T); }
    /** AffineRef over this array. */
    AffineRef
    ref(std::int64_t offset = 0) const
    {
        return AffineRef{sim, sizeof(T), offset};
    }
};

/**
 * Allocate a per-vertex property array: partitioned across banks
 * under Aff-Alloc (first array) or aligned to the first (subsequent
 * arrays); plain heap otherwise.
 */
template <typename T>
SimArr<T>
allocProp(RunContext &ctx, std::uint64_t n, const void *align_to)
{
    SimArr<T> arr;
    if (ctx.affinity()) {
        alloc::AffineArray req;
        req.elem_size = sizeof(T);
        req.num_elem = n;
        if (align_to)
            req.align_to = align_to;
        else
            req.partition = true;
        arr.host = static_cast<T *>(ctx.allocator.mallocAff(req));
    } else {
        arr.host =
            static_cast<T *>(ctx.allocator.allocPlain(n * sizeof(T)));
    }
    arr.sim = ctx.machine.addressSpace().simAddrOf(arr.host);
    return arr;
}

/** Per-slice stream bundle for one edge-processing pass. */
struct SliceStreams
{
    MigratingStream vside;  // row offsets / head pointers
    MigratingStream vprop;  // per-vertex property scan
    MigratingStream escan;  // edge array scan / node chase
    MigratingStream wscan;  // weight array scan (CSR weighted)
    MigratingStream qscan;  // frontier queue scan

    explicit SliceStreams(CoreId owner)
        : vside(owner), vprop(owner), escan(owner), wscan(owner),
          qscan(owner)
    {}
};

/**
 * Issue an indirect request, honouring GraphParams::idealIndirect
 * (Fig. 6's Ind-Ideal: requests issued as if already at the target's
 * bank, i.e. zero indirect hops).
 */
nsc::AccessOutcome
indirectEv(RunContext &ctx, SliceStreams &ss, Addr a, AccessType t,
           bool ideal)
{
    if (ideal && ctx.offloaded()) {
        return ctx.machine.l3StreamAccess(ctx.machine.bankOfSim(a), a, 4,
                                          t);
    }
    return ctx.exec.indirect(ss.escan, a, 4, t);
}

/**
 * Mode/layout-dependent edge storage: original CSR arrays (plain
 * heap), Linked CSR (§5.3), or the Fig. 6 chunk-remapped CSR.
 */
struct EdgeStore
{
    RunContext *ctx = nullptr;
    bool linked = false;
    bool chunked = false;
    bool weighted = false;
    SimArr<std::uint64_t> rowOff;
    SimArr<VertexId> dst;
    SimArr<std::uint32_t> wgt;
    std::unique_ptr<ds::LinkedCsr> lcsr;
    Addr headsSim = 0;
    // Chunk-remap state (Fig. 6).
    std::uint32_t edgesPerChunk = 0;
    std::vector<char *> chunkHost;
    std::vector<Addr> chunkSim;

    void
    build(RunContext &c, const Csr &g, bool use_weights,
          const GraphParams &p, const void *vertex_array,
          bool affinity_to_owner = false)
    {
        ctx = &c;
        weighted = use_weights;
        EdgeLayout layout = p.layout;
        if (layout == EdgeLayout::autoByMode) {
            layout = c.affinity() ? EdgeLayout::linked : EdgeLayout::csr;
        }
        if (layout == EdgeLayout::linked) {
            linked = true;
            ds::LinkedCsrOptions o;
            o.nodeBytes = p.nodeBytes;
            o.weighted = use_weights;
            o.affinityToOwner = affinity_to_owner;
            lcsr = std::make_unique<ds::LinkedCsr>(g, c.allocator,
                                                   vertex_array, 4, o);
            headsSim = c.machine.addressSpace().simAddrOf(
                lcsr->headsArray());
            return;
        }
        if (layout == EdgeLayout::chunkRemap) {
            buildChunks(c, g, use_weights, p.chunkBytes, vertex_array);
            return;
        }
        const std::uint64_t n = g.numVertices;
        rowOff.host = static_cast<std::uint64_t *>(
            c.allocator.allocPlain((n + 1) * sizeof(std::uint64_t)));
        rowOff.sim = c.machine.addressSpace().simAddrOf(rowOff.host);
        std::memcpy(rowOff.host, g.rowOffsets.data(),
                    (n + 1) * sizeof(std::uint64_t));
        dst.host = static_cast<VertexId *>(
            c.allocator.allocPlain(g.numEdges() * sizeof(VertexId)));
        dst.sim = c.machine.addressSpace().simAddrOf(dst.host);
        std::memcpy(dst.host, g.edges.data(),
                    g.numEdges() * sizeof(VertexId));
        if (use_weights) {
            wgt.host = static_cast<std::uint32_t *>(c.allocator.allocPlain(
                g.numEdges() * sizeof(std::uint32_t)));
            wgt.sim = c.machine.addressSpace().simAddrOf(wgt.host);
            std::memcpy(wgt.host, g.weights.data(),
                        g.numEdges() * sizeof(std::uint32_t));
        }
    }

    /**
     * Fig. 6: break the edge array into fixed-size chunks and place
     * each at the bank holding the plurality of its destinations'
     * properties, subject to a 2% load-imbalance cap (footnote 2).
     * Row offsets stay a plain array.
     */
    void
    buildChunks(RunContext &c, const Csr &g, bool use_weights,
                std::uint32_t chunk_bytes, const void *vertex_array)
    {
        chunked = true;
        const std::uint64_t n = g.numVertices;
        rowOff.host = static_cast<std::uint64_t *>(
            c.allocator.allocPlain((n + 1) * sizeof(std::uint64_t)));
        rowOff.sim = c.machine.addressSpace().simAddrOf(rowOff.host);
        std::memcpy(rowOff.host, g.rowOffsets.data(),
                    (n + 1) * sizeof(std::uint64_t));

        const Addr prop_sim =
            c.machine.addressSpace().simAddrOf(vertex_array);
        const std::uint32_t entry = use_weights ? 8 : 4;
        edgesPerChunk = chunk_bytes / entry;
        const std::uint64_t num_chunks =
            (g.numEdges() + edgesPerChunk - 1) / edgesPerChunk;
        const std::uint32_t banks = c.config.machine.numBanks();
        const std::uint64_t cap = static_cast<std::uint64_t>(
            1.02 * double(num_chunks * std::uint64_t(chunk_bytes)) /
            banks);
        std::vector<std::uint64_t> load(banks, 0);

        for (std::uint64_t ck = 0; ck < num_chunks; ++ck) {
            const std::uint64_t e0 = ck * edgesPerChunk;
            const std::uint64_t e1 = std::min<std::uint64_t>(
                e0 + edgesPerChunk, g.numEdges());
            // Histogram of destination banks for this chunk, then
            // pick the bank minimizing total indirect hops ("freely
            // map them ... with minimal indirect traffic").
            std::vector<std::uint32_t> hist(banks, 0);
            for (std::uint64_t e = e0; e < e1; ++e) {
                ++hist[c.machine.bankOfSim(prop_sim +
                                           Addr(g.edges[e]) * 4)];
            }
            BankId best = invalidBank;
            double best_score = 0.0;
            for (BankId b = 0; b < banks; ++b) {
                if (load[b] + chunk_bytes > cap)
                    continue;
                double score = 0.0;
                for (BankId d = 0; d < banks; ++d) {
                    if (hist[d])
                        score += double(hist[d]) *
                                 c.machine.hopsBetween(b, d);
                }
                if (best == invalidBank || score < best_score) {
                    best_score = score;
                    best = b;
                }
            }
            if (best == invalidBank) {
                // Everything at the cap: take the least-loaded bank.
                best = static_cast<BankId>(
                    std::min_element(load.begin(), load.end()) -
                    load.begin());
            }
            load[best] += chunk_bytes;

            char *slot = static_cast<char *>(
                c.allocator.allocSlotAtBank(chunk_bytes, best));
            for (std::uint64_t e = e0; e < e1; ++e) {
                const std::uint64_t off = (e - e0) * entry;
                std::memcpy(slot + off, &g.edges[e], 4);
                if (use_weights)
                    std::memcpy(slot + off + 4, &g.weights[e], 4);
            }
            chunkHost.push_back(slot);
            chunkSim.push_back(
                c.machine.addressSpace().simAddrOf(slot));
        }
    }

    /** Warm the L3 with the whole structure (graphs are resident
     *  after construction in the execution-driven flow). */
    void
    preload(const Csr &g)
    {
        auto &m = ctx->machine;
        if (chunked) {
            m.preloadL3Range(rowOff.sim, (g.numVertices + 1) * 8);
            const std::uint32_t entry = weighted ? 8 : 4;
            for (Addr sim : chunkSim)
                m.preloadL3Range(sim, Addr(edgesPerChunk) * entry);
            return;
        }
        if (linked) {
            m.preloadL3Range(headsSim,
                             std::uint64_t(g.numVertices) * 8);
            for (VertexId u = 0; u < g.numVertices; ++u) {
                for (auto *nd = lcsr->head(u); nd; nd = nd->next()) {
                    m.preloadL3Range(m.addressSpace().simAddrOf(nd),
                                     lcsr->nodeBytes());
                }
            }
            return;
        }
        m.preloadL3Range(rowOff.sim, (g.numVertices + 1) * 8);
        m.preloadL3Range(dst.sim, g.numEdges() * 4);
        if (weighted)
            m.preloadL3Range(wgt.sim, g.numEdges() * 4);
    }

    /**
     * Iterate u's edges, emitting the scan events, and call
     * f(v, weight); f returns false to stop early (pull passes).
     */
    template <typename F>
    void
    forEach(nsc::StreamExecutor &exec, SliceStreams &ss, VertexId u,
            F &&f)
    {
        if (chunked) {
            exec.streamStep(ss.vside, rowOff.at(u), 16,
                            AccessType::read);
            const std::uint32_t entry = weighted ? 8 : 4;
            for (std::uint64_t e = rowOff[u]; e < rowOff[u + 1]; ++e) {
                const std::uint64_t ck = e / edgesPerChunk;
                const std::uint64_t off =
                    (e % edgesPerChunk) * std::uint64_t(entry);
                exec.streamStep(ss.escan, chunkSim[ck] + off, entry,
                                AccessType::read, /*sequential=*/false);
                VertexId v;
                std::memcpy(&v, chunkHost[ck] + off, 4);
                std::uint32_t w = 1;
                if (weighted)
                    std::memcpy(&w, chunkHost[ck] + off + 4, 4);
                if (!f(v, w))
                    return;
            }
            return;
        }
        if (!linked) {
            exec.streamStep(ss.vside, rowOff.at(u), 16,
                            AccessType::read);
            const std::uint64_t lo = rowOff[u];
            const std::uint64_t hi = rowOff[u + 1];
            for (std::uint64_t e = lo; e < hi; ++e) {
                exec.streamStep(ss.escan, dst.at(e), 4,
                                AccessType::read);
                std::uint32_t w = 1;
                if (weighted) {
                    exec.streamStep(ss.wscan, wgt.at(e), 4,
                                    AccessType::read);
                    w = wgt[e];
                }
                if (!f(dst[e], w))
                    return;
            }
            return;
        }
        exec.streamStep(ss.vside, headsSim + std::uint64_t(u) * 8, 8,
                        AccessType::read);
        for (auto *nd = lcsr->head(u); nd; nd = nd->next()) {
            exec.streamStep(
                ss.escan, ctx->machine.addressSpace().simAddrOf(nd),
                lcsr->nodeBytes(), AccessType::read,
                /*sequential=*/false);
            for (std::uint32_t i = 0; i < nd->count(); ++i) {
                if (!f(nd->dst(i), nd->weight(i)))
                    return;
            }
        }
    }
};

/**
 * Run fn(slice, u) over all vertices, sliced across cores/banks in
 * contiguous ranges and chunked into epochs.
 */
template <typename F>
void
vertexPass(RunContext &ctx, std::uint32_t num_v, std::uint32_t chunk,
           const std::string &phase, F &&fn)
{
    const std::uint32_t slices = ctx.config.machine.numTiles();
    const std::uint64_t slice = (num_v + slices - 1) / slices;
    const std::uint64_t epochs = (slice + chunk - 1) / chunk;
    for (std::uint64_t e = 0; e < epochs; ++e) {
        ctx.machine.beginEpoch(/*deferrable=*/true);
        for (std::uint32_t c = 0; c < slices; ++c) {
            const std::uint64_t s0 = std::uint64_t(c) * slice;
            const std::uint64_t s1 =
                std::min<std::uint64_t>(s0 + slice, num_v);
            const std::uint64_t e0 = s0 + e * chunk;
            const std::uint64_t e1 =
                std::min<std::uint64_t>(e0 + chunk, s1);
            for (std::uint64_t u = e0; u < e1; ++u)
                fn(c, static_cast<VertexId>(u));
        }
        ctx.machine.endEpoch(epochFloor, phase);
    }
}

/**
 * Run fn(slice, idx) over per-slice work lists, chunked into epochs
 * (frontier processing: slices advance through their lists in
 * lock-step chunks).
 */
template <typename F>
void
frontierPass(RunContext &ctx,
             const std::vector<std::vector<VertexId>> &work,
             std::uint32_t chunk, const std::string &phase, F &&fn)
{
    std::uint64_t longest = 0;
    for (const auto &w : work)
        longest = std::max<std::uint64_t>(longest, w.size());
    const std::uint64_t epochs = (longest + chunk - 1) / chunk;
    for (std::uint64_t e = 0; e < epochs; ++e) {
        ctx.machine.beginEpoch(/*deferrable=*/true);
        for (std::uint32_t c = 0; c < work.size(); ++c) {
            const std::uint64_t e0 = e * chunk;
            const std::uint64_t e1 =
                std::min<std::uint64_t>(e0 + chunk, work[c].size());
            for (std::uint64_t i = e0; i < e1; ++i)
                fn(c, work[c][i]);
        }
        ctx.machine.endEpoch(epochFloor, phase);
    }
}

/** Split a frontier into per-slice work lists by owning partition. */
std::vector<std::vector<VertexId>>
splitFrontier(const std::vector<VertexId> &frontier, std::uint32_t num_v,
              std::uint32_t slices)
{
    std::vector<std::vector<VertexId>> work(slices);
    const std::uint64_t slice =
        (std::uint64_t(num_v) + slices - 1) / slices;
    for (VertexId u : frontier)
        work[u / slice].push_back(u);
    return work;
}

} // namespace

// ----------------------------------------------------------- PageRank

RunResult
runPageRankPush(const RunConfig &rc, const GraphParams &p)
{
    RunContext ctx(rc);
    return runPageRankPush(ctx, p);
}

RunResult
runPageRankPush(RunContext &ctx, const GraphParams &p)
{
    const Csr &g = *p.graph;
    const std::uint32_t n = g.numVertices;

    auto rank = allocProp<float>(ctx, n, nullptr);
    auto contrib = allocProp<float>(ctx, n, rank.host);
    auto next = allocProp<float>(ctx, n, rank.host);
    EdgeStore es;
    es.build(ctx, g, false, p, next.host);

    for (std::uint32_t v = 0; v < n; ++v) {
        rank[v] = 1.0f / n;
        next[v] = 0.0f;
    }
    es.preload(g);
    for (auto sim : {rank.sim, contrib.sim, next.sim})
        ctx.machine.preloadL3Range(sim, std::uint64_t(n) * 4);

    const float base = (1.0f - damping) / n;
    std::vector<SliceStreams> ss;
    for (std::uint32_t c = 0; c < ctx.config.machine.numTiles(); ++c)
        ss.emplace_back(c);

    for (int it = 0; it < p.iters; ++it) {
        // Pass 1 (affine): contrib[u] = rank[u] / deg(u).
        for (std::uint32_t u = 0; u < n; ++u)
            contrib[u] = g.degree(u) ? rank[u] / g.degree(u) : 0.0f;
        ctx.exec.affineKernel({rank.ref()}, {contrib.ref()}, n, 2.0,
                              "contrib");
        // Pass 2 (scatter): atomic adds into next[v].
        vertexPass(ctx, n, p.vertexChunk, "scatter",
                   [&](std::uint32_t c, VertexId u) {
                       ctx.exec.streamStep(ss[c].vprop, contrib.at(u), 4,
                                           AccessType::read);
                       const float cv = contrib[u];
                       es.forEach(ctx.exec, ss[c], u,
                                  [&](VertexId v, std::uint32_t) {
                                      next[v] += cv;
                                      indirectEv(ctx, ss[c],
                                                 next.at(v),
                                                 AccessType::atomic,
                                                 p.idealIndirect);
                                      return true;
                                  });
                   });
        // Pass 3 (affine): rank = base + d * next; next = 0.
        for (std::uint32_t v = 0; v < n; ++v) {
            rank[v] = base + damping * next[v];
            next[v] = 0.0f;
        }
        ctx.exec.affineKernel({next.ref()}, {rank.ref(), next.ref()}, n,
                              3.0, "apply");
    }

    const auto ref = graph::pageRankReference(g, p.iters);
    bool valid = true;
    for (std::uint32_t v = 0; v < n; v += 199) {
        valid &= std::abs(rank[v] - ref[v]) <=
                 1e-5 + 0.02 * std::abs(ref[v]);
    }
    return ctx.finish("pr_push", valid);
}

RunResult
runPageRankPull(const RunConfig &rc, const GraphParams &p)
{
    RunContext ctx(rc);
    return runPageRankPull(ctx, p);
}

RunResult
runPageRankPull(RunContext &ctx, const GraphParams &p)
{
    const Csr &g = *p.graph;
    const Csr gt = g.transpose();
    const std::uint32_t n = g.numVertices;

    auto rank = allocProp<float>(ctx, n, nullptr);
    auto contrib = allocProp<float>(ctx, n, rank.host);
    EdgeStore es;
    // Pull's indirect accesses read contrib[u]: nodes placed near it.
    es.build(ctx, gt, false, p, contrib.host);

    for (std::uint32_t v = 0; v < n; ++v)
        rank[v] = 1.0f / n;
    es.preload(gt);
    for (auto sim : {rank.sim, contrib.sim})
        ctx.machine.preloadL3Range(sim, std::uint64_t(n) * 4);

    const float base = (1.0f - damping) / n;
    std::vector<SliceStreams> ss;
    for (std::uint32_t c = 0; c < ctx.config.machine.numTiles(); ++c)
        ss.emplace_back(c);

    for (int it = 0; it < p.iters; ++it) {
        for (std::uint32_t u = 0; u < n; ++u)
            contrib[u] = g.degree(u) ? rank[u] / g.degree(u) : 0.0f;
        ctx.exec.affineKernel({rank.ref()}, {contrib.ref()}, n, 2.0,
                              "contrib");
        // Gather: rank[v] = base + d * sum(contrib[in-neighbours]).
        vertexPass(ctx, n, p.vertexChunk, "gather",
                   [&](std::uint32_t c, VertexId v) {
                       float sum = 0.0f;
                       es.forEach(ctx.exec, ss[c], v,
                                  [&](VertexId u, std::uint32_t) {
                                      sum += contrib[u];
                                      indirectEv(ctx, ss[c],
                                                 contrib.at(u),
                                                 AccessType::read,
                                                 p.idealIndirect);
                                      return true;
                                  });
                       rank[v] = base + damping * sum;
                       ctx.exec.streamStep(ss[c].vprop, rank.at(v), 4,
                                           AccessType::write);
                   });
    }

    const auto ref = graph::pageRankReference(g, p.iters);
    bool valid = true;
    for (std::uint32_t v = 0; v < n; v += 199) {
        valid &= std::abs(rank[v] - ref[v]) <=
                 1e-5 + 0.02 * std::abs(ref[v]);
    }
    return ctx.finish("pr_pull", valid);
}

// ---------------------------------------------------------------- BFS

BfsStrategy
defaultBfsStrategy(ExecMode mode)
{
    // The paper's methodology selects the best implementation per
    // configuration (§6). At Table 3 scale that is the GAP heuristic
    // for In-Core and Near-L3 and the paper's extended thresholds for
    // Aff-Alloc, which push through the big middle iterations and
    // pull only at the peak (Fig. 18; see EXPERIMENTS.md).
    return mode == ExecMode::affAlloc ? BfsStrategy::affSwitch
                                      : BfsStrategy::gapSwitch;
}

namespace
{

/** Decide the next iteration's direction (§7.2). */
bool
choosePush(BfsStrategy s, bool prev_push, double visited_ratio,
           double active_ratio, double scout_ratio)
{
    switch (s) {
      case BfsStrategy::pushOnly:
        return true;
      case BfsStrategy::pullOnly:
        return false;
      case BfsStrategy::gapSwitch:
        if (prev_push)
            return scout_ratio <= 1.0 / 14.0;
        return active_ratio < 1.0 / 24.0;
      case BfsStrategy::affSwitch:
        // Push -> Pull: Visited > 40% and Scout Edges > 6%.
        // Pull -> Push: Awake Nodes < 25%.
        if (prev_push)
            return !(visited_ratio > 0.40 && scout_ratio > 0.06);
        return active_ratio < 0.25;
    }
    return true;
}

} // namespace

BfsResult
runBfs(const RunConfig &rc, const GraphParams &p, BfsStrategy strategy)
{
    RunContext ctx(rc);
    return runBfs(ctx, p, strategy);
}

BfsResult
runBfs(RunContext &ctx, const GraphParams &p, BfsStrategy strategy)
{
    const Csr &g = *p.graph;
    // GAP convention: undirected (symmetric) graphs share one edge
    // structure for both directions, halving the resident footprint.
    const bool symmetric = g.transpose().edges == g.edges;
    const Csr gt = symmetric ? Csr{} : g.transpose();
    const std::uint32_t n = g.numVertices;
    const std::uint32_t slices = ctx.config.machine.numTiles();

    auto parent = allocProp<std::int32_t>(ctx, n, nullptr);
    auto fbits = allocProp<std::uint8_t>(ctx, n / 8 + 1, parent.host);
    EdgeStore out_edges;
    out_edges.build(ctx, g, false, p, parent.host);
    EdgeStore in_edges_store;
    if (!symmetric) {
        // Pull scans v's own chain and probes the (tiny) frontier
        // bitmap, so in-edge nodes colocate with v's parent slot, not
        // with the bitmap (which would concentrate the structure).
        in_edges_store.build(ctx, gt, false, p, parent.host,
                             /*affinity_to_owner=*/true);
    }
    EdgeStore &in_edges = symmetric ? out_edges : in_edges_store;

    // Frontier queues: spatially distributed under Aff-Alloc, global
    // array + single tail otherwise.
    std::unique_ptr<ds::SpatialQueue> sq;
    SimArr<VertexId> gq;
    SimArr<std::uint64_t> gtail;
    if (ctx.affinity() && p.useSpatialQueue) {
        sq = std::make_unique<ds::SpatialQueue>(ctx.allocator,
                                                parent.host, n, slices,
                                                1);
    } else {
        gq.host = static_cast<VertexId *>(
            ctx.allocator.allocPlain(std::uint64_t(n) * 4));
        gq.sim = ctx.machine.addressSpace().simAddrOf(gq.host);
        gtail.host = static_cast<std::uint64_t *>(
            ctx.allocator.allocPlain(64));
        gtail.sim = ctx.machine.addressSpace().simAddrOf(gtail.host);
        // allocPlain memory is uninitialized; the push phase does a
        // fetch-and-add on the tail before the epoch-end reset, so an
        // unseeded tail would index gq by heap garbage.
        *gtail.host = 0;
    }

    out_edges.preload(g);
    if (!symmetric)
        in_edges.preload(gt);
    ctx.machine.preloadL3Range(parent.sim, std::uint64_t(n) * 4);
    ctx.machine.preloadL3Range(fbits.sim, n / 8 + 1);

    std::vector<std::int64_t> level(n, -1);
    for (std::uint32_t v = 0; v < n; ++v)
        parent[v] = -1;

    VertexId source = p.source;
    if (g.degree(source) == 0) {
        // Pick the highest-degree vertex (GAP picks nonzero sources).
        std::uint32_t best = 0;
        for (VertexId v = 0; v < n; ++v) {
            if (g.degree(v) > best) {
                best = g.degree(v);
                source = v;
            }
        }
    }
    parent[source] = static_cast<std::int32_t>(source);
    level[source] = 0;

    std::vector<SliceStreams> ss;
    for (std::uint32_t c = 0; c < slices; ++c)
        ss.emplace_back(c);

    BfsResult result;
    std::vector<VertexId> frontier{source};
    std::uint64_t visited = 1;
    bool push = strategy != BfsStrategy::pullOnly;
    std::int64_t depth = 0;
    std::vector<std::uint8_t> in_front(n, 0);

    while (!frontier.empty()) {
        ++depth;
        std::vector<VertexId> next_frontier;
        const std::string phase = push ? "push" : "pull";

        if (push) {
            auto work = splitFrontier(frontier, n, slices);
            frontierPass(
                ctx, work, 256, phase,
                [&](std::uint32_t c, VertexId u) {
                    // Read u from the frontier queue.
                    ctx.exec.streamStep(ss[c].qscan, parent.at(u), 4,
                                        AccessType::read);
                    out_edges.forEach(
                        ctx.exec, ss[c], u,
                        [&](VertexId v, std::uint32_t) {
                            // CAS on parent[v] (Fig. 2(c)).
                            indirectEv(ctx, ss[c], parent.at(v),
                                       AccessType::atomic,
                                       p.idealIndirect);
                            if (level[v] == -1) {
                                level[v] = depth;
                                parent[v] =
                                    static_cast<std::int32_t>(u);
                                next_frontier.push_back(v);
                                // Push v: tail bump + store. With the
                                // spatial queue both land in v's bank.
                                if (sq) {
                                    const std::uint32_t part =
                                        sq->partitionOf(v);
                                    const std::uint32_t idx =
                                        sq->push(v);
                                    ctx.exec.indirect(
                                        ss[c].escan,
                                        ctx.machine.addressSpace()
                                            .simAddrOf(
                                                sq->tailPtr(part)),
                                        8, AccessType::atomic);
                                    ctx.exec.indirect(
                                        ss[c].escan,
                                        ctx.machine.addressSpace()
                                            .simAddrOf(sq->slotPtr(
                                                part, std::min(
                                                          idx,
                                                          sq->capacity() -
                                                              1))),
                                        4, AccessType::write);
                                } else {
                                    const std::uint64_t pos =
                                        (*gtail.host)++;
                                    gq[pos % n] = v;
                                    ctx.exec.indirect(
                                        ss[c].escan, gtail.sim, 8,
                                        AccessType::atomic);
                                    ctx.exec.indirect(ss[c].escan,
                                                      gq.at(pos % n), 4,
                                                      AccessType::write);
                                }
                            }
                            return true;
                        });
                });
            if (sq)
                sq->clear();
            else
                *gtail.host = 0;
        } else {
            // Build the current-frontier bitmap (affine pass).
            std::fill(in_front.begin(), in_front.end(), 0);
            for (VertexId u : frontier)
                in_front[u] = 1;
            for (std::uint32_t i = 0; i <= n / 8; ++i)
                fbits[i] = 0;
            for (VertexId u : frontier)
                fbits[u / 8] |= std::uint8_t(1) << (u % 8);
            ctx.exec.affineKernel({}, {fbits.ref()}, n / 8 + 1, 0.5,
                                  "front-bits");
            // Bottom-up: every unvisited vertex scans its in-edges.
            vertexPass(ctx, n, p.vertexChunk, phase,
                       [&](std::uint32_t c, VertexId v) {
                           ctx.exec.streamStep(ss[c].vprop,
                                               parent.at(v), 4,
                                               AccessType::read);
                           if (level[v] != -1)
                               return;
                           in_edges.forEach(
                               ctx.exec, ss[c], v,
                               [&](VertexId u, std::uint32_t) {
                                   indirectEv(ctx, ss[c],
                                              fbits.at(u / 8),
                                              AccessType::read,
                                              p.idealIndirect);
                                   if (in_front[u]) {
                                       level[v] = depth;
                                       parent[v] = static_cast<
                                           std::int32_t>(u);
                                       next_frontier.push_back(v);
                                       ctx.exec.streamStep(
                                           ss[c].vprop, parent.at(v),
                                           4, AccessType::write);
                                       return false; // early exit
                                   }
                                   return true;
                               });
                       });
        }

        visited += next_frontier.size();
        std::uint64_t scout = 0;
        for (VertexId v : next_frontier)
            scout += g.degree(v);

        BfsIterSample sample;
        sample.visited = visited;
        sample.active = next_frontier.size();
        sample.scoutEdges = scout;
        sample.push = push;
        sample.endCycle = ctx.machine.now();
        result.iters.push_back(sample);

        push = choosePush(strategy, push,
                          double(visited) / n,
                          double(next_frontier.size()) / n,
                          double(scout) /
                              std::max<std::uint64_t>(1, g.numEdges()));
        frontier = std::move(next_frontier);
    }

    // Validate against the reference depths.
    const auto ref = graph::bfsReference(g, source);
    bool valid = true;
    for (std::uint32_t v = 0; v < n; ++v)
        valid &= level[v] == ref[v];
    result.run = ctx.finish("bfs", valid);
    return result;
}

// --------------------------------------------------------------- SSSP

RunResult
runSssp(const RunConfig &rc, const GraphParams &p)
{
    RunContext ctx(rc);
    return runSssp(ctx, p);
}

RunResult
runSssp(RunContext &ctx, const GraphParams &p)
{
    const Csr &g = *p.graph;
    if (g.weights.empty())
        SIM_FATAL("workloads", "sssp requires a weighted graph");
    const std::uint32_t n = g.numVertices;
    const std::uint32_t slices = ctx.config.machine.numTiles();
    constexpr std::uint32_t inf = ~std::uint32_t(0);

    auto dist = allocProp<std::uint32_t>(ctx, n, nullptr);
    EdgeStore es;
    es.build(ctx, g, true, p, dist.host);

    std::unique_ptr<ds::SpatialQueue> sq;
    SimArr<VertexId> gq;
    SimArr<std::uint64_t> gtail;
    if (ctx.affinity() && p.useSpatialQueue) {
        sq = std::make_unique<ds::SpatialQueue>(ctx.allocator, dist.host,
                                                n, slices, 2);
    } else {
        gq.host = static_cast<VertexId *>(
            ctx.allocator.allocPlain(std::uint64_t(n) * 4));
        gq.sim = ctx.machine.addressSpace().simAddrOf(gq.host);
        gtail.host = static_cast<std::uint64_t *>(
            ctx.allocator.allocPlain(64));
        gtail.sim = ctx.machine.addressSpace().simAddrOf(gtail.host);
        *gtail.host = 0; // see runBfs: seed the tail before first use
    }

    es.preload(g);
    ctx.machine.preloadL3Range(dist.sim, std::uint64_t(n) * 4);

    for (std::uint32_t v = 0; v < n; ++v)
        dist[v] = inf;
    VertexId source = p.source;
    if (g.degree(source) == 0) {
        std::uint32_t best = 0;
        for (VertexId v = 0; v < n; ++v) {
            if (g.degree(v) > best) {
                best = g.degree(v);
                source = v;
            }
        }
    }
    dist[source] = 0;

    std::vector<SliceStreams> ss;
    for (std::uint32_t c = 0; c < slices; ++c)
        ss.emplace_back(c);

    std::vector<VertexId> frontier{source};
    std::vector<std::uint8_t> queued(n, 0);
    int rounds = 0;
    while (!frontier.empty() && rounds < 512) {
        ++rounds;
        std::vector<VertexId> next_frontier;
        auto work = splitFrontier(frontier, n, slices);
        frontierPass(
            ctx, work, 256, "relax",
            [&](std::uint32_t c, VertexId u) {
                ctx.exec.streamStep(ss[c].qscan, dist.at(u), 4,
                                    AccessType::read);
                const std::uint32_t du = dist[u];
                es.forEach(
                    ctx.exec, ss[c], u,
                    [&](VertexId v, std::uint32_t w) {
                        // Remote atomic-min on dist[v].
                        indirectEv(ctx, ss[c], dist.at(v),
                                   AccessType::atomic, p.idealIndirect);
                        const std::uint32_t nd = du + w;
                        if (nd < dist[v]) {
                            dist[v] = nd;
                            if (!queued[v]) {
                                queued[v] = 1;
                                next_frontier.push_back(v);
                                if (sq) {
                                    const std::uint32_t part =
                                        sq->partitionOf(v);
                                    const std::uint32_t idx =
                                        sq->push(v);
                                    ctx.exec.indirect(
                                        ss[c].escan,
                                        ctx.machine.addressSpace()
                                            .simAddrOf(
                                                sq->tailPtr(part)),
                                        8, AccessType::atomic);
                                    ctx.exec.indirect(
                                        ss[c].escan,
                                        ctx.machine.addressSpace()
                                            .simAddrOf(sq->slotPtr(
                                                part,
                                                std::min(
                                                    idx,
                                                    sq->capacity() -
                                                        1))),
                                        4, AccessType::write);
                                } else {
                                    const std::uint64_t pos =
                                        (*gtail.host)++;
                                    gq[pos % n] = v;
                                    ctx.exec.indirect(
                                        ss[c].escan, gtail.sim, 8,
                                        AccessType::atomic);
                                    ctx.exec.indirect(ss[c].escan,
                                                      gq.at(pos % n), 4,
                                                      AccessType::write);
                                }
                            }
                        }
                        return true;
                    });
            });
        for (VertexId v : next_frontier)
            queued[v] = 0;
        if (sq)
            sq->clear();
        else
            *gtail.host = 0;
        frontier = std::move(next_frontier);
    }

    const auto ref = graph::ssspReference(g, source);
    bool valid = true;
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::int64_t got =
            dist[v] == inf ? graph::unreachable : std::int64_t(dist[v]);
        valid &= got == ref[v];
    }
    return ctx.finish("sssp", valid);
}

RunResult
runSsspPq(const RunConfig &rc, const GraphParams &p)
{
    RunContext ctx(rc);
    return runSsspPq(ctx, p);
}

RunResult
runSsspPq(RunContext &ctx, const GraphParams &p)
{
    const Csr &g = *p.graph;
    if (g.weights.empty())
        SIM_FATAL("workloads", "sssp requires a weighted graph");
    const std::uint32_t n = g.numVertices;
    const std::uint32_t slices = ctx.config.machine.numTiles();
    constexpr std::uint32_t inf = ~std::uint32_t(0);

    auto dist = allocProp<std::uint32_t>(ctx, n, nullptr);
    EdgeStore es;
    es.build(ctx, g, true, p, dist.host);

    // Aff-Alloc: one relaxed heap per bank, storage aligned to the
    // distance partition. Baselines: a single global heap whose
    // storage lives wherever the heap allocates (plain array here).
    std::unique_ptr<ds::SpatialPriorityQueue> spq;
    SimArr<ds::PqEntry> gheap;
    std::vector<ds::PqEntry> gheap_entries;
    if (ctx.affinity() && p.useSpatialQueue) {
        spq = std::make_unique<ds::SpatialPriorityQueue>(
            ctx.allocator, dist.host, n, slices, 4);
    } else {
        gheap.host = static_cast<ds::PqEntry *>(ctx.allocator.allocPlain(
            std::uint64_t(n) * 4 * sizeof(ds::PqEntry)));
        gheap.sim = ctx.machine.addressSpace().simAddrOf(gheap.host);
    }

    es.preload(g);
    ctx.machine.preloadL3Range(dist.sim, std::uint64_t(n) * 4);

    for (std::uint32_t v = 0; v < n; ++v)
        dist[v] = inf;
    VertexId source = p.source;
    if (g.degree(source) == 0) {
        std::uint32_t best = 0;
        for (VertexId v = 0; v < n; ++v) {
            if (g.degree(v) > best) {
                best = g.degree(v);
                source = v;
            }
        }
    }
    dist[source] = 0;

    std::vector<SliceStreams> ss;
    for (std::uint32_t c = 0; c < slices; ++c)
        ss.emplace_back(c);

    Rng pop_rng(p.source + 101);
    auto push_entry = [&](VertexId v, std::uint32_t prio,
                          std::uint32_t slice) {
        if (spq) {
            const std::uint32_t part = spq->partitionOf(v);
            spq->push(v, prio);
            // Heap push: one line access at the partition bank.
            ctx.exec.streamStep(
                ss[slice].qscan,
                ctx.machine.addressSpace().simAddrOf(
                    spq->heapStorage(part)),
                8, AccessType::write, /*sequential=*/false);
        } else {
            gheap_entries.push_back(ds::PqEntry{v, prio});
            std::push_heap(gheap_entries.begin(), gheap_entries.end(),
                           [](const ds::PqEntry &a, const ds::PqEntry &b) {
                               return a.priority > b.priority;
                           });
            ctx.exec.streamStep(ss[slice].qscan,
                                gheap.at(gheap_entries.size() - 1), 8,
                                AccessType::write,
                                /*sequential=*/false);
        }
    };

    push_entry(source, 0, 0);

    // Drain in batches: each epoch pops up to one entry per slice and
    // relaxes its edges (the parallel, relaxed-order execution the
    // per-bank queues enable).
    std::uint64_t processed = 0;
    const std::uint64_t guard =
        64ull * std::max<std::uint64_t>(g.numEdges(), 1);
    bool drained = false;
    while (!drained && processed < guard) {
        ctx.machine.beginEpoch(/*deferrable=*/true);
        for (std::uint32_t c = 0; c < slices; ++c) {
            ds::PqEntry e;
            bool got;
            if (spq) {
                got = spq->popRelaxed(pop_rng, e);
                if (got) {
                    const std::uint32_t part = spq->partitionOf(e.id);
                    ctx.exec.streamStep(
                        ss[c].qscan,
                        ctx.machine.addressSpace().simAddrOf(
                            spq->heapStorage(part)),
                        8, AccessType::read, /*sequential=*/false);
                }
            } else {
                got = !gheap_entries.empty();
                if (got) {
                    std::pop_heap(
                        gheap_entries.begin(), gheap_entries.end(),
                        [](const ds::PqEntry &a, const ds::PqEntry &b) {
                            return a.priority > b.priority;
                        });
                    e = gheap_entries.back();
                    gheap_entries.pop_back();
                    ctx.exec.streamStep(ss[c].qscan, gheap.at(0), 8,
                                        AccessType::read,
                                        /*sequential=*/false);
                }
            }
            if (!got)
                continue;
            ++processed;
            if (e.priority > dist[e.id])
                continue; // stale entry
            const std::uint32_t du = dist[e.id];
            es.forEach(ctx.exec, ss[c], e.id,
                       [&](VertexId v, std::uint32_t w) {
                           ctx.exec.indirect(ss[c].escan, dist.at(v), 4,
                                             AccessType::atomic);
                           const std::uint32_t nd = du + w;
                           if (nd < dist[v]) {
                               dist[v] = nd;
                               push_entry(v, nd, c);
                           }
                           return true;
                       });
        }
        ctx.machine.endEpoch(epochFloor, "pq-relax");
        drained = spq ? spq->empty() : gheap_entries.empty();
    }

    const auto ref = graph::ssspReference(g, source);
    bool valid = processed < guard;
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::int64_t got =
            dist[v] == inf ? graph::unreachable : std::int64_t(dist[v]);
        valid &= got == ref[v];
    }
    return ctx.finish("sssp_pq", valid);
}

} // namespace affalloc::workloads
