/**
 * @file
 * Domain example: an evolving social graph (§8 "Dynamic Data
 * Structures"). Edges stream in and churn; because the edge nodes are
 * allocated through the irregular affinity API at insertion time,
 * spatial locality is maintained continuously — no repartitioning or
 * preprocessing pass is ever run. Periodically snapshots the graph
 * and runs BFS to show the structure stays queryable.
 */

#include <cstdio>

#include "ds/dynamic_graph.hh"
#include "graph/reference.hh"
#include "sim/rng.hh"
#include "workloads/run_context.hh"

using namespace affalloc;
using workloads::RunConfig;
using workloads::RunContext;

namespace
{

/** Community-structured random edge (social graphs cluster). */
graph::Edge
nextEdge(Rng &rng, graph::VertexId n)
{
    const auto u = graph::VertexId(rng.below(n));
    const auto v = graph::VertexId((u + 1 + rng.below(128)) % n);
    return graph::Edge{u, v, 1};
}

} // namespace

int
main()
{
    constexpr graph::VertexId n = 16 * 1024;
    std::printf("evolving graph example: %u vertices, streaming "
                "edges with churn\n\n",
                n);

    RunContext ctx(RunConfig::forMode(ExecMode::affAlloc));

    // Partitioned per-vertex property array; edge nodes follow it.
    alloc::AffineArray props_req;
    props_req.elem_size = 4;
    props_req.num_elem = n;
    props_req.partition = true;
    void *props = ctx.allocator.mallocAff(props_req);

    ds::DynamicGraph g(n, ctx.allocator, props, 4);
    Rng rng(2026);

    std::printf("%10s %12s %18s %14s\n", "edges", "nodes",
                "avg node->dst hops", "BFS reachable");
    for (int phase = 0; phase < 5; ++phase) {
        // Grow.
        for (int i = 0; i < 40000; ++i) {
            const auto e = nextEdge(rng, n);
            if (e.src != e.dst)
                g.addEdge(e.src, e.dst);
        }
        // Churn: drop a random edge, add a fresh one.
        for (int i = 0; i < 10000; ++i) {
            const auto u = graph::VertexId(rng.below(n));
            if (g.head(u))
                g.removeEdge(u, g.head(u)->dst(0));
            const auto e = nextEdge(rng, n);
            if (e.src != e.dst)
                g.addEdge(e.src, e.dst);
        }

        // Snapshot + query: the mutable structure converts to a
        // static CSR for analytics at any time.
        const graph::Csr snap = g.toCsr();
        const auto depths = graph::bfsReference(snap, 0);
        std::uint64_t reachable = 0;
        for (auto d : depths)
            reachable += d != graph::unreachable;

        std::printf("%10llu %12llu %18.2f %13.1f%%\n",
                    (unsigned long long)g.numEdges(),
                    (unsigned long long)g.numNodes(),
                    g.averageNodeToDestDistance(ctx.machine),
                    100.0 * double(reachable) / n);
    }

    std::printf("\nLocality (avg hops from each edge node to its "
                "destinations) stays flat as the graph\nevolves: "
                "affinity is maintained by construction, not by "
                "periodic repartitioning.\n");
    return 0;
}
