/**
 * @file
 * Domain example: a two-stage HPC stencil pipeline (heat diffusion
 * followed by a denoising pass) over the same grid. Demonstrates the
 * affine affinity API as an application would use it directly:
 *
 *  - intra-array row affinity (align_x = row length) so vertical
 *    stencil neighbours share a bank (Fig. 8(c));
 *  - inter-array alignment so every operand of an element lives with
 *    it (Fig. 8(b));
 *  - introspection of the layout the runtime chose.
 */

#include <cstdio>

#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main()
{
    constexpr std::uint64_t rows = 1024;
    constexpr std::uint64_t cols = 1024;
    std::printf("stencil pipeline example: %llu x %llu grid, "
                "diffusion + denoise\n\n",
                (unsigned long long)rows, (unsigned long long)cols);

    // Stage A: what the allocator decides for this grid.
    {
        workloads::RunContext ctx(
            RunConfig::forMode(ExecMode::affAlloc));
        alloc::AffineArray grid_req;
        grid_req.elem_size = sizeof(float);
        grid_req.num_elem = rows * cols;
        grid_req.align_x = static_cast<std::int64_t>(cols);
        auto *grid =
            static_cast<float *>(ctx.allocator.mallocAff(grid_req));

        alloc::AffineArray coef_req = grid_req;
        coef_req.align_x = 0;
        coef_req.align_to = grid;
        auto *coef =
            static_cast<float *>(ctx.allocator.mallocAff(coef_req));

        const auto *gi = ctx.allocator.arrayInfo(grid);
        std::printf("runtime chose a %llu-byte interleaving for the "
                    "grid;\n  bank(grid[0,0])=%u  bank(grid[1,0])=%u "
                    "(vertical neighbours colocated)\n"
                    "  bank(coef[5,7])=%u == bank(grid[5,7])=%u "
                    "(operands colocated)\n\n",
                    (unsigned long long)gi->intrlv,
                    ctx.allocator.bankOfElement(grid, 0),
                    ctx.allocator.bankOfElement(grid, cols),
                    ctx.allocator.bankOfElement(coef, 5 * cols + 7),
                    ctx.allocator.bankOfElement(grid, 5 * cols + 7));
    }

    // Stage B: run the pipeline under all three modes.
    std::printf("%-12s %14s %14s %12s %8s\n", "mode", "hotspot cyc",
                "srad cyc", "total", "valid");
    Cycles base_total = 0;
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        HotspotParams hp;
        hp.rows = rows;
        hp.cols = cols;
        hp.iters = 4;
        const RunResult heat = runHotspot(RunConfig::forMode(mode), hp);

        SradParams sp;
        sp.rows = rows;
        sp.cols = cols;
        sp.iters = 4;
        const RunResult denoise = runSrad(RunConfig::forMode(mode), sp);

        const Cycles total = heat.cycles() + denoise.cycles();
        if (mode == ExecMode::inCore)
            base_total = total;
        std::printf("%-12s %14llu %14llu %12llu %8s", execModeName(mode),
                    (unsigned long long)heat.cycles(),
                    (unsigned long long)denoise.cycles(),
                    (unsigned long long)total,
                    heat.valid && denoise.valid ? "yes" : "NO");
        if (mode != ExecMode::inCore)
            std::printf("  (%.2fx)", double(base_total) / double(total));
        std::printf("\n");
    }
    std::printf("\nThe affinity-allocated grids keep all five stencil "
                "operands of each element in one\nbank, so the "
                "offloaded streams compute without forwarding "
                "operands across the mesh.\n");
    return 0;
}
