/**
 * @file
 * Quickstart: build a machine, allocate three aligned arrays with
 * malloc_aff, run a near-data vector addition under the three
 * evaluated modes and print what the layout did to traffic and time.
 *
 * This is the paper's Fig. 1/3 scenario end-to-end in ~60 lines of
 * user code.
 */

#include <cstdio>

#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main()
{
    std::printf("affinity-alloc quickstart: C[i] = A[i] + B[i], "
                "1.5M floats, 8x8 mesh\n\n");
    std::printf("%-10s %12s %12s %12s %8s\n", "mode", "cycles",
                "NoC hops", "energy (mJ)", "valid");

    VecAddParams params;
    RunResult baseline;
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        RunConfig rc = RunConfig::forMode(mode);
        VecAddParams p = params;
        // In-Core / Near-L3 are oblivious to layout: plain heap.
        // Aff-Alloc conveys affinity through malloc_aff.
        p.layout = mode == ExecMode::affAlloc ? VecAddLayout::affinity
                                              : VecAddLayout::heapLinear;
        const RunResult r = runVecAdd(rc, p);
        if (mode == ExecMode::inCore)
            baseline = r;
        std::printf("%-10s %12llu %12llu %12.3f %8s", execModeName(mode),
                    (unsigned long long)r.cycles(),
                    (unsigned long long)r.hops(), r.joules * 1e3,
                    r.valid ? "yes" : "NO");
        if (mode != ExecMode::inCore) {
            std::printf("   (%.2fx speedup, %.0f%% traffic vs In-Core)",
                        double(baseline.cycles()) / double(r.cycles()),
                        100.0 * double(r.hops()) /
                            double(baseline.hops()));
        }
        std::printf("\n");
    }
    std::printf("\nThe Aff-Alloc run colocated A[i], B[i], C[i] in the "
                "same L3 bank, so the\noffloaded streams forward zero "
                "operand data across the mesh.\n");
    return 0;
}
