/**
 * @file
 * Domain example: social-network analytics near the cache. Builds a
 * power-law graph, lays it out with the co-designed structures
 * (partitioned vertex properties, Linked CSR edge nodes placed near
 * their destination vertices, a spatially distributed frontier
 * queue), and compares PageRank and BFS against the layout-oblivious
 * near-data baseline. Also demonstrates the bank-select policy knob
 * (Eq. 4) that a performance engineer would tune.
 */

#include <cstdio>

#include "graph/generators.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main()
{
    std::printf("graph analytics example: 64k-vertex power-law "
                "social graph\n\n");
    const auto g =
        graph::powerLaw(64 * 1024, 2 * 1024 * 1024, 2.1, 123,
                        /*weighted=*/true, /*symmetrize=*/true);
    std::printf("graph: %u vertices, %llu edges, avg degree %.1f\n\n",
                g.numVertices, (unsigned long long)g.numEdges(),
                g.averageDegree());

    GraphParams p;
    p.graph = &g;
    p.iters = 4;

    // Layout-oblivious near-data baseline.
    const RunResult base =
        runPageRankPush(RunConfig::forMode(ExecMode::nearL3), p);
    std::printf("%-28s %12s %14s %8s\n", "configuration", "cycles",
                "NoC hops", "valid");
    std::printf("%-28s %12llu %14llu %8s\n", "Near-L3 (oblivious CSR)",
                (unsigned long long)base.cycles(),
                (unsigned long long)base.hops(),
                base.valid ? "yes" : "NO");

    // Affinity alloc with different bank-select policies.
    for (auto [label, policy, h] :
         {std::tuple{"Aff-Alloc Min-Hop", alloc::BankPolicy::minHop, 0.0},
          std::tuple{"Aff-Alloc Hybrid-5", alloc::BankPolicy::hybrid,
                     5.0}}) {
        RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
        rc.allocOpts.policy = policy;
        rc.allocOpts.hybridH = h;
        const RunResult r = runPageRankPush(rc, p);
        std::printf("%-28s %12llu %14llu %8s   (%.2fx, %.0f%% traffic)\n",
                    label, (unsigned long long)r.cycles(),
                    (unsigned long long)r.hops(),
                    r.valid ? "yes" : "NO",
                    double(base.cycles()) / double(r.cycles()),
                    100.0 * double(r.hops()) / double(base.hops()));
    }

    // BFS with the spatially distributed frontier queue.
    std::printf("\nBFS with spatially distributed frontier:\n");
    const BfsResult bfs_base =
        runBfs(RunConfig::forMode(ExecMode::nearL3), p,
               BfsStrategy::gapSwitch);
    const BfsResult bfs_aff =
        runBfs(RunConfig::forMode(ExecMode::affAlloc), p,
               BfsStrategy::gapSwitch);
    std::printf("  Near-L3   %10llu cycles (%zu iterations)\n",
                (unsigned long long)bfs_base.run.cycles(),
                bfs_base.iters.size());
    std::printf("  Aff-Alloc %10llu cycles (%.2fx; valid=%s)\n",
                (unsigned long long)bfs_aff.run.cycles(),
                double(bfs_base.run.cycles()) /
                    double(bfs_aff.run.cycles()),
                bfs_aff.run.valid && bfs_base.run.valid ? "yes" : "NO");
    return 0;
}
