/**
 * @file
 * Domain example: an in-memory key-value join/aggregation operator.
 * Shows the irregular affinity API directly: a chained hash table
 * whose bucket array is partitioned across L3 banks and whose chain
 * nodes are allocated near their bucket heads (malloc_aff with the
 * bucket slot as the affinity address), so every probe resolves
 * within one bank. Compares against the plain-heap layout under the
 * same near-data execution.
 */

#include <cstdio>

#include "ds/pointer_structs.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main()
{
    std::printf("key-value aggregation example: 128k-row build, "
                "256k-probe join\n\n");

    HashJoinParams p;
    p.buildRows = 128 * 1024;
    p.probeRows = 256 * 1024;
    p.numBuckets = 32 * 1024;

    std::printf("%-24s %12s %14s %10s\n", "configuration", "cycles",
                "NoC hops", "valid");
    RunResult base;
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runHashJoin(RunConfig::forMode(mode), p);
        if (mode == ExecMode::inCore)
            base = r;
        std::printf("%-24s %12llu %14llu %10s", execModeName(mode),
                    (unsigned long long)r.cycles(),
                    (unsigned long long)r.hops(),
                    r.valid ? "yes" : "NO");
        if (mode != ExecMode::inCore) {
            std::printf("   (%.2fx over In-Core)",
                        double(base.cycles()) / double(r.cycles()));
        }
        std::printf("\n");
    }

    // Peek at what the allocator actually did: probe one bucket's
    // chain and show every node landed in the bucket's bank.
    std::printf("\ninspecting the Aff-Alloc layout of one bucket "
                "chain:\n");
    workloads::RunContext ctx(
        RunConfig::forMode(ExecMode::affAlloc));
    ds::HashJoinTable table(ctx.allocator, 1024, /*use_affinity=*/true);
    for (std::uint64_t k = 0; k < 4096; ++k)
        table.insert(k * 2654435761ULL, k);
    // Find a bucket with a chain of >= 4 nodes.
    for (std::uint64_t b = 0; b < table.numBuckets(); ++b) {
        int len = 0;
        for (const auto *n = *table.bucketHead(b); n; n = n->next)
            ++len;
        if (len < 4)
            continue;
        std::printf("  bucket %llu head bank: %u; chain banks:",
                    (unsigned long long)b,
                    ctx.machine.bankOfHost(table.bucketHead(b)));
        for (const auto *n = *table.bucketHead(b); n; n = n->next)
            std::printf(" %u", ctx.machine.bankOfHost(n));
        std::printf("\n");
        break;
    }
    std::printf("\nWith affinity allocation the whole chain shares the "
                "bucket's bank, so a probe is one\nlocal lookup instead "
                "of a pointer chase across the mesh.\n");
    return 0;
}
