/**
 * @file
 * Command-line explorer for the affinity-alloc library. Lets a user
 * run any workload under any configuration and inspect layouts
 * without writing code:
 *
 *   affalloc_cli topo [--numbering snake]
 *   affalloc_cli layout --intrlv 64 --bytes 8192 [--start-bank 5]
 *   affalloc_cli run <workload> [--mode aff|near|core]
 *                    [--policy rnd|lnr|minhop|hybrid] [--h 5]
 *                    [--numbering rowmajor|snake|block2]
 *                    [--scale 14] [--iters 4] [--csv out.csv]
 *
 * Workloads: vecadd pathfinder hotspot srad hotspot3d pr_push pr_pull
 *            bfs sssp sssp_pq link_list hash_join bin_tree
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "chaos/chaos.hh"
#include "graph/generators.hh"
#include "serve/serve.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "obs/heatmap.hh"
#include "sim/prof.hh"
#include "sim/simcheck.hh"
#include "harness/trace.hh"
#include "tenant/qos.hh"
#include "tenant/scheduler.hh"
#include "traffic/traffic.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

struct Options
{
    std::string command;
    std::string workload;
    ExecMode mode = ExecMode::affAlloc;
    alloc::BankPolicy policy = alloc::BankPolicy::hybrid;
    double h = 5.0;
    sim::BankNumbering numbering = sim::BankNumbering::rowMajor;
    std::uint32_t scale = 14;
    int iters = 4;
    std::uint64_t intrlv = 64;
    std::uint64_t bytes = 4096;
    BankId startBank = 0;
    std::string csv;
    // Fault campaign (defaults: healthy machine).
    std::uint64_t faultSeed = sim::FaultConfig{}.seed;
    std::uint32_t offlineBanks = 0;
    double offloadRejectRate = 0.0;
    // SimCheck (defaults from AFFALLOC_SIMCHECK* env vars).
    bool simcheck = false;
    bool simcheckDigest = false;
    std::uint32_t simcheckWatchdog = 0;
    bool simcheckWatchdogSet = false;
    // Observability (all opt-in and digest-neutral; see src/obs/).
    std::string traceOut;
    std::string heatmap;
    std::string explainOut;
    std::string obsCsv;
    // Multi-tenant co-runs (the corun command).
    std::string tenants;
    tenant::SchedPolicy sched = tenant::SchedPolicy::roundRobin;
    std::uint32_t quantum = 8;
    bool quick = false;
    bool noSolo = false;
    // Background traffic classes (corun and serve commands). Raw flag
    // text; parsed by src/traffic once the machine config is known.
    std::string hostAgents;
    std::string ioStreams;
    std::string llcPolicy;
    std::string classBw;
    // Open-system serving (the serve command).
    std::string mix;
    std::uint32_t requests = 48;
    double rate = 2.0;
    double burstiness = 0.0;
    std::uint32_t slots = 4;
    std::uint32_t queueCap = 8;
    std::uint64_t serveMaxCycles = 0; // 0: ServeOptions default
    std::uint64_t serveSeed = 0;      // 0: ServeOptions default
    std::string faultSchedule;
    bool noReaffinity = false;
    // Chaos fuzzing (the chaos command).
    std::uint32_t campaigns = 8;
    unsigned jobs = 0; // 0: AFFALLOC_JOBS env, else 1
    std::string bundleDir;
    std::string plant;
    std::string replayPath;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: affalloc_cli topo|layout|run|corun|serve|chaos "
                 "[options]\n"
                 "  run <workload> --mode aff|near|core --policy "
                 "rnd|lnr|minhop|hybrid --h N\n"
                 "      --numbering rowmajor|snake|block2 --scale N "
                 "--iters N --csv FILE\n"
                 "      --fault-seed N --offline-banks=N "
                 "--offload-reject-rate=P\n"
                 "      --simcheck (run invariant audits each epoch)\n"
                 "      --simcheck-digest (print determinism digest)\n"
                 "      --simcheck-watchdog N (abort after N stalled "
                 "epochs; 0 = off)\n"
                 "      --trace-out FILE (Chrome trace_event JSON; load "
                 "in Perfetto)\n"
                 "      --heatmap banks|links (ASCII spatial heatmap)\n"
                 "      --explain-placement FILE (Eq. 4 decision log)\n"
                 "      --obs-csv PREFIX (per-bank/per-link counter "
                 "CSVs)\n"
                 "  layout --intrlv BYTES --bytes BYTES --start-bank N\n"
                 "  corun --tenants NAME[:COUNT[:WEIGHT]],... (e.g. "
                 "--tenants=bfs:2,vecadd:1)\n"
                 "      --sched rr|weighted --quantum N (epochs per "
                 "turn) --quick --no-solo\n"
                 "      --host-agents N --io-streams N (background "
                 "host / DDIO-style I/O traffic;\n"
                 "       also accepted by serve)\n"
                 "      --llc-policy ddio|way[:K]|bypass (how I/O "
                 "writes allocate in L3)\n"
                 "      --class-bw none|part:NDC,HOST,IO|prio[:P] "
                 "(bank/link arbitration between\n"
                 "       traffic classes)\n"
                 "      [--mode/--policy/--h/--csv/--simcheck*/--heatmap "
                 "banks as for run]\n"
                 "  serve --requests N --rate R (arrivals per Mcycle) "
                 "--burstiness F\n"
                 "      --slots N --queue N --max-cycles N "
                 "--mix wl[:weight],... \n"
                 "      --fault-schedule bank:<id>@<cycle>,"
                 "link:<id>@<cycle>[x<f>],...\n"
                 "      --no-reaffinity (keep default next-in-order "
                 "spares on bank kills)\n"
                 "      --seed N (arrival schedule seed)\n"
                 "      [--mode/--sched/--quantum/--quick/--csv/"
                 "--simcheck* as for corun]\n"
                 "  chaos --campaigns N --seed N --jobs N "
                 "--bundle-dir DIR\n"
                 "      --plant spare-keying (known-bad legacy keying "
                 "regression)\n"
                 "      --watchdog-cycles N (livelock threshold; also "
                 "accepted by run/corun/serve;\n"
                 "       env AFFALLOC_SIMCHECK_WATCHDOG)\n"
                 "  --sim-threads N (any command: shard-parallel epoch "
                 "replay; results are\n"
                 "       bit-identical at any N; env "
                 "AFFALLOC_SIM_THREADS; default 1)\n"
                 "  chaos --replay BUNDLE.json (re-run a shrunk repro "
                 "bundle)\n"
                 "  --prof-out FILE (any command: host-side self-profile "
                 "JSON at exit;\n"
                 "       digest/stdout-neutral; env AFFALLOC_PROF_OUT)\n"
                 "  --progress[=SECONDS] (any command: stderr heartbeat "
                 "for long runs;\n"
                 "       default 5s; env AFFALLOC_PROGRESS)\n"
                 "  --version (print git revision, build type, and "
                 "compiled feature flags)\n");
    std::exit(2);
}

#ifndef AFFALLOC_GIT_REVISION
#define AFFALLOC_GIT_REVISION "unknown"
#endif
#ifndef AFFALLOC_BUILD_TYPE
#define AFFALLOC_BUILD_TYPE "unknown"
#endif

/** Artifact provenance: which build produced this CSV/profile. */
[[noreturn]] void
printVersion()
{
    std::printf("affalloc_cli %s (%s)\n", AFFALLOC_GIT_REVISION,
                AFFALLOC_BUILD_TYPE);
    std::printf("features: simcheck=%s prof=%s\n",
                simcheck::compiledIn ? "on" : "off",
                prof::compiledIn ? "on" : "off");
    std::exit(0);
}

/**
 * Strict decimal parse for count-valued flags: the whole value must
 * be digits and fit in [0, max]. Rejecting "10x", "-1" and overflow
 * here turns silent atoi truncation into a clean config error.
 */
std::uint64_t
parseCount(const char *flag, const std::string &v, std::uint64_t max)
{
    bool ok = !v.empty();
    for (const char c : v)
        ok = ok && c >= '0' && c <= '9';
    std::uint64_t n = 0;
    if (ok) {
        char *end = nullptr;
        errno = 0;
        n = std::strtoull(v.c_str(), &end, 10);
        ok = errno == 0 && end == v.c_str() + v.size() && n <= max;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "%s=%s: expected an integer in [0, %llu]\n", flag,
                     v.c_str(), (unsigned long long)max);
        usage();
    }
    return n;
}

Options
parse(int argc, char **argv)
{
    Options o;
    if (argc < 2)
        usage();
    o.command = argv[1];
    int i = 2;
    if (o.command == "run") {
        if (argc < 3)
            usage();
        o.workload = argv[2];
        i = 3;
    }
    // Options accept both "--opt value" and "--opt=value".
    std::string inline_val;
    bool has_inline = false;
    auto next = [&](const char *what) -> std::string {
        if (has_inline)
            return inline_val;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", what);
            usage();
        }
        return argv[++i];
    };
    for (; i < argc; ++i) {
        std::string a = argv[i];
        has_inline = false;
        if (a.rfind("--", 0) == 0) {
            if (const std::size_t eq = a.find('=');
                eq != std::string::npos) {
                inline_val = a.substr(eq + 1);
                a.resize(eq);
                has_inline = true;
            }
        }
        if (a == "--mode") {
            const std::string v = next("--mode");
            o.mode = v == "core" ? ExecMode::inCore
                     : v == "near" ? ExecMode::nearL3
                                   : ExecMode::affAlloc;
        } else if (a == "--policy") {
            const std::string v = next("--policy");
            o.policy = v == "rnd"      ? alloc::BankPolicy::random
                       : v == "lnr"    ? alloc::BankPolicy::linear
                       : v == "minhop" ? alloc::BankPolicy::minHop
                                       : alloc::BankPolicy::hybrid;
        } else if (a == "--h") {
            o.h = std::atof(next("--h").c_str());
        } else if (a == "--numbering") {
            const std::string v = next("--numbering");
            o.numbering = v == "snake"    ? sim::BankNumbering::snake
                          : v == "block2" ? sim::BankNumbering::block2
                                          : sim::BankNumbering::rowMajor;
        } else if (a == "--scale") {
            o.scale = std::uint32_t(std::atoi(next("--scale").c_str()));
        } else if (a == "--iters") {
            o.iters = std::atoi(next("--iters").c_str());
        } else if (a == "--intrlv") {
            o.intrlv = std::strtoull(next("--intrlv").c_str(), nullptr, 0);
        } else if (a == "--bytes") {
            o.bytes = std::strtoull(next("--bytes").c_str(), nullptr, 0);
        } else if (a == "--start-bank") {
            o.startBank =
                BankId(std::atoi(next("--start-bank").c_str()));
        } else if (a == "--csv") {
            o.csv = next("--csv");
        } else if (a == "--fault-seed") {
            o.faultSeed =
                std::strtoull(next("--fault-seed").c_str(), nullptr, 0);
        } else if (a == "--offline-banks") {
            o.offlineBanks = std::uint32_t(
                std::atoi(next("--offline-banks").c_str()));
        } else if (a == "--offload-reject-rate") {
            o.offloadRejectRate =
                std::atof(next("--offload-reject-rate").c_str());
        } else if (a == "--simcheck") {
            o.simcheck = true;
        } else if (a == "--simcheck-digest") {
            o.simcheckDigest = true;
        } else if (a == "--trace-out") {
            o.traceOut = next("--trace-out");
        } else if (a == "--heatmap") {
            o.heatmap = next("--heatmap");
            if (o.heatmap != "banks" && o.heatmap != "links") {
                std::fprintf(stderr, "--heatmap=%s: expected 'banks' or "
                             "'links'\n", o.heatmap.c_str());
                usage();
            }
        } else if (a == "--explain-placement") {
            o.explainOut = next("--explain-placement");
        } else if (a == "--obs-csv") {
            o.obsCsv = next("--obs-csv");
        } else if (a == "--simcheck-watchdog" ||
                   a == "--watchdog-cycles") {
            o.simcheckWatchdog = std::uint32_t(parseCount(
                a.c_str(), next(a.c_str()), UINT32_MAX));
            o.simcheckWatchdogSet = true;
        } else if (a == "--tenants") {
            o.tenants = next("--tenants");
        } else if (a == "--sched") {
            o.sched = tenant::parseSchedPolicy(next("--sched"));
        } else if (a == "--quantum") {
            o.quantum =
                std::uint32_t(std::atoi(next("--quantum").c_str()));
        } else if (a == "--quick") {
            o.quick = true;
        } else if (a == "--no-solo") {
            o.noSolo = true;
        } else if (a == "--host-agents") {
            o.hostAgents = next("--host-agents");
        } else if (a == "--io-streams") {
            o.ioStreams = next("--io-streams");
        } else if (a == "--llc-policy") {
            o.llcPolicy = next("--llc-policy");
        } else if (a == "--class-bw") {
            o.classBw = next("--class-bw");
        } else if (a == "--mix") {
            o.mix = next("--mix");
        } else if (a == "--requests") {
            o.requests =
                std::uint32_t(std::atoi(next("--requests").c_str()));
        } else if (a == "--rate") {
            o.rate = std::atof(next("--rate").c_str());
        } else if (a == "--burstiness") {
            o.burstiness = std::atof(next("--burstiness").c_str());
        } else if (a == "--slots") {
            o.slots = std::uint32_t(std::atoi(next("--slots").c_str()));
        } else if (a == "--queue") {
            o.queueCap =
                std::uint32_t(std::atoi(next("--queue").c_str()));
        } else if (a == "--max-cycles") {
            o.serveMaxCycles =
                std::strtoull(next("--max-cycles").c_str(), nullptr, 0);
        } else if (a == "--seed") {
            o.serveSeed =
                std::strtoull(next("--seed").c_str(), nullptr, 0);
        } else if (a == "--fault-schedule") {
            o.faultSchedule = next("--fault-schedule");
        } else if (a == "--no-reaffinity") {
            o.noReaffinity = true;
        } else if (a == "--campaigns") {
            o.campaigns = std::uint32_t(parseCount(
                "--campaigns", next("--campaigns"), 100'000));
        } else if (a == "--jobs") {
            o.jobs = unsigned(
                parseCount("--jobs", next("--jobs"), 1024));
            if (o.jobs == 0) {
                std::fprintf(stderr, "--jobs needs >= 1 worker\n");
                usage();
            }
        } else if (a == "--bundle-dir") {
            o.bundleDir = next("--bundle-dir");
        } else if (a == "--plant") {
            o.plant = next("--plant");
            if (o.plant != "spare-keying") {
                std::fprintf(stderr,
                             "--plant=%s: only 'spare-keying' is "
                             "known\n", o.plant.c_str());
                usage();
            }
        } else if (a == "--sim-threads") {
            // Validated and applied by harness::applySimThreads in
            // main() (it needs the raw argv either way for the env
            // fallback); consume the value here.
            (void)next("--sim-threads");
        } else if (a == "--prof-out") {
            // Validated (path opened) by harness::applyProfFlags in
            // main(); consume the value here.
            (void)next("--prof-out");
        } else if (a == "--progress") {
            // Applied by harness::applyProfFlags in main(). Only the
            // inline =SECONDS form carries a value, so there is
            // nothing to consume here.
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
        }
    }
    // Flag wins; the environment is the fleet-wide fallback so CI can
    // tighten the livelock threshold without touching every command.
    if (!o.simcheckWatchdogSet) {
        if (const char *env = std::getenv("AFFALLOC_SIMCHECK_WATCHDOG")) {
            o.simcheckWatchdog = std::uint32_t(
                parseCount("AFFALLOC_SIMCHECK_WATCHDOG", env, UINT32_MAX));
            o.simcheckWatchdogSet = true;
        }
    }
    return o;
}

int
cmdTopo(const Options &o)
{
    sim::MachineConfig cfg;
    cfg.bankNumbering = o.numbering;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    std::printf("%s\n\nbank -> tile map (%s numbering):\n",
                cfg.toString().c_str(),
                sim::bankNumberingName(o.numbering));
    for (std::uint32_t y = 0; y < cfg.meshY; ++y) {
        for (std::uint32_t x = 0; x < cfg.meshX; ++x) {
            // Find the bank homed at this tile.
            const TileId tile = y * cfg.meshX + x;
            BankId bank = 0;
            for (BankId b = 0; b < cfg.numBanks(); ++b) {
                if (machine.tileOfBank(b) == tile) {
                    bank = b;
                    break;
                }
            }
            std::printf("%4u", bank);
        }
        std::printf("\n");
    }
    return 0;
}

int
cmdLayout(const Options &o)
{
    RunContext ctx(RunConfig::forMode(ExecMode::affAlloc));
    char *p = static_cast<char *>(
        ctx.allocator.allocInterleaved(o.bytes, o.intrlv, o.startBank));
    std::printf("allocated %llu bytes at interleave %llu, start bank "
                "%u\nblock -> bank:\n",
                (unsigned long long)o.bytes,
                (unsigned long long)o.intrlv, o.startBank);
    const std::uint64_t blocks = (o.bytes + o.intrlv - 1) / o.intrlv;
    for (std::uint64_t b = 0; b < blocks && b < 128; ++b) {
        std::printf("%4u", ctx.machine.bankOfHost(p + b * o.intrlv));
        if ((b + 1) % 16 == 0)
            std::printf("\n");
    }
    std::printf("\n");
    return 0;
}

int
cmdRun(const Options &o)
{
    RunConfig rc = RunConfig::forMode(o.mode);
    rc.allocOpts.policy = o.policy;
    rc.allocOpts.hybridH = o.h;
    rc.machine.bankNumbering = o.numbering;
    rc.machine.faults.seed = o.faultSeed;
    rc.machine.faults.offlineBanks = o.offlineBanks;
    rc.machine.faults.offloadRejectRate = o.offloadRejectRate;
    if (o.simcheck)
        rc.machine.simcheck.audit = true;
    if (o.simcheckWatchdogSet)
        rc.machine.simcheck.watchdogStallEpochs = o.simcheckWatchdog;
    rc.obs.metrics = !o.heatmap.empty() || !o.obsCsv.empty();
    rc.obs.tracePath = o.traceOut;
    rc.obs.explainPath = o.explainOut;
    if (!simcheck::compiledIn && o.simcheck) {
        std::fprintf(stderr,
                     "warning: --simcheck requested but this binary "
                     "was built with AFFALLOC_SIMCHECK=OFF\n");
    }

    RunResult result;
    if (o.workload == "vecadd") {
        VecAddParams p;
        p.layout = o.mode == ExecMode::affAlloc
                       ? VecAddLayout::affinity
                       : VecAddLayout::heapLinear;
        result = runVecAdd(rc, p);
    } else if (o.workload == "pathfinder") {
        PathfinderParams p;
        p.iters = o.iters;
        result = runPathfinder(rc, p);
    } else if (o.workload == "hotspot") {
        HotspotParams p;
        p.iters = o.iters;
        result = runHotspot(rc, p);
    } else if (o.workload == "srad") {
        SradParams p;
        p.iters = o.iters;
        result = runSrad(rc, p);
    } else if (o.workload == "hotspot3d") {
        Hotspot3dParams p;
        p.iters = o.iters;
        result = runHotspot3d(rc, p);
    } else if (o.workload == "link_list") {
        result = runLinkList(rc, LinkListParams{});
    } else if (o.workload == "hash_join") {
        result = runHashJoin(rc, HashJoinParams{});
    } else if (o.workload == "bin_tree") {
        result = runBinTree(rc, BinTreeParams{});
    } else {
        graph::KroneckerParams kp;
        kp.scale = o.scale;
        kp.edgeFactor = 16;
        const auto g = graph::kronecker(kp);
        GraphParams p;
        p.graph = &g;
        p.iters = o.iters;
        if (o.workload == "pr_push")
            result = runPageRankPush(rc, p);
        else if (o.workload == "pr_pull")
            result = runPageRankPull(rc, p);
        else if (o.workload == "bfs")
            result = runBfs(rc, p, defaultBfsStrategy(o.mode)).run;
        else if (o.workload == "sssp")
            result = runSssp(rc, p);
        else if (o.workload == "sssp_pq")
            result = runSsspPq(rc, p);
        else {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         o.workload.c_str());
            usage();
        }
    }

    std::printf("workload   %s\nconfig     %s / %s",
                result.workload.c_str(), execModeName(o.mode),
                alloc::bankPolicyName(o.policy));
    if (o.policy == alloc::BankPolicy::hybrid)
        std::printf("-%g", o.h);
    std::printf(" / %s\n", sim::bankNumberingName(o.numbering));
    std::printf("cycles     %llu\nenergy     %.6f J\nNoC hops   %llu "
                "(offload %llu, data %llu, control %llu)\n"
                "L3 miss    %.2f%%\nNoC util   %.1f%%\nvalid      %s\n",
                (unsigned long long)result.cycles(), result.joules,
                (unsigned long long)result.hops(),
                (unsigned long long)result.stats.hops[int(
                    TrafficClass::offload)],
                (unsigned long long)result.stats.hops[int(
                    TrafficClass::data)],
                (unsigned long long)result.stats.hops[int(
                    TrafficClass::control)],
                100.0 * result.l3MissRate,
                100.0 * result.nocUtilization,
                result.valid ? "yes" : "NO");
    const sim::Stats &rs = result.stats;
    if (rs.offlineBanks || rs.offloadRetries || rs.offloadFallbacks ||
        rs.allocFallbacks || rs.victimMigrations || rs.degradedLinkFlits) {
        std::printf("degrade    offline banks %llu, offload retries "
                    "%llu, offload fallbacks %llu, alloc fallbacks "
                    "%llu, migrations %llu, degraded flits %llu\n",
                    (unsigned long long)rs.offlineBanks,
                    (unsigned long long)rs.offloadRetries,
                    (unsigned long long)rs.offloadFallbacks,
                    (unsigned long long)rs.allocFallbacks,
                    (unsigned long long)rs.victimMigrations,
                    (unsigned long long)rs.degradedLinkFlits);
    }
    if (o.simcheckDigest) {
        std::printf("digest     %s\n",
                    simcheck::digestToString(result.digest()).c_str());
    }
    if (!o.csv.empty()) {
        harness::writeTimelineCsv(result, o.csv);
        std::printf("timeline   written to %s\n", o.csv.c_str());
    }
    if (o.heatmap == "banks") {
        std::fputs(obs::renderBankHeatmap(
                       result.workload + " L3 accesses per bank",
                       result.obsSnapshot.bankAccesses,
                       result.obsSnapshot.bankTile,
                       result.obsSnapshot.meshX,
                       result.obsSnapshot.meshY)
                       .c_str(),
                   stdout);
    } else if (o.heatmap == "links") {
        std::fputs(obs::renderLinkHeatmap(
                       result.workload + " link flit-hops",
                       result.obsSnapshot.linkFlits,
                       result.obsSnapshot.meshX,
                       result.obsSnapshot.meshY)
                       .c_str(),
                   stdout);
    }
    if (!o.obsCsv.empty()) {
        harness::writeBankMetricsCsv(result, o.obsCsv + ".banks.csv");
        harness::writeLinkMetricsCsv(result, o.obsCsv + ".links.csv");
        std::printf("obs csv    written to %s.{banks,links}.csv\n",
                    o.obsCsv.c_str());
    }
    if (!o.traceOut.empty())
        std::printf("trace      written to %s\n", o.traceOut.c_str());
    if (!o.explainOut.empty())
        std::printf("explain    written to %s\n", o.explainOut.c_str());
    return result.valid ? 0 : 1;
}

/**
 * Validate and apply the background-traffic flags against a concrete
 * machine config (flag limits depend on the mesh and L3 geometry).
 * Throws FatalError on rejection; callers surface it as a CLI error.
 */
traffic::TrafficConfig
applyTrafficOptions(const Options &o, sim::MachineConfig &mc)
{
    traffic::TrafficConfig tc;
    if (!o.hostAgents.empty())
        tc.hostAgents = traffic::parseAgentCount(
            "--host-agents", o.hostAgents, mc.numTiles());
    if (!o.ioStreams.empty())
        tc.ioStreams = traffic::parseAgentCount(
            "--io-streams", o.ioStreams, mc.numTiles());
    if (!o.llcPolicy.empty())
        mc.llcIoPolicy = traffic::parseLlcPolicy(
            o.llcPolicy, &mc.llcIoWays, mc.l3Assoc);
    if (!o.classBw.empty())
        mc.classArb = traffic::parseClassBw(o.classBw);
    return tc;
}

int
cmdCorun(const Options &o)
{
    if (o.tenants.empty()) {
        std::fprintf(stderr,
                     "corun requires --tenants; available workloads: ");
        for (const auto &n : tenant::workloadNames())
            std::fprintf(stderr, "%s ", n.c_str());
        std::fprintf(stderr, "\n");
        usage();
    }

    tenant::CorunOptions copts;
    copts.mode = o.mode;
    copts.allocOpts.policy = o.policy;
    copts.allocOpts.hybridH = o.h;
    copts.machine.bankNumbering = o.numbering;
    copts.machine.faults.seed = o.faultSeed;
    copts.machine.faults.offlineBanks = o.offlineBanks;
    copts.machine.faults.offloadRejectRate = o.offloadRejectRate;
    if (o.simcheck)
        copts.machine.simcheck.audit = true;
    if (o.simcheckWatchdogSet)
        copts.machine.simcheck.watchdogStallEpochs = o.simcheckWatchdog;
    copts.policy = o.sched;
    copts.quantumEpochs = o.quantum;
    copts.quick = o.quick;
    copts.solo = !o.noSolo;
    copts.obs.metrics = o.heatmap == "banks";
    copts.obs.tracePath = o.traceOut;

    // parseTenantSpecs rejects unknown workloads with the full list of
    // valid names; surface that as a clean CLI error, not a backtrace.
    tenant::CorunReport report;
    try {
        std::vector<tenant::TenantSpec> specs =
            tenant::parseTenantSpecs(o.tenants);
        const traffic::TrafficConfig tc =
            applyTrafficOptions(o, copts.machine);
        for (tenant::TenantSpec &s : traffic::makeBackgroundSpecs(tc))
            specs.push_back(std::move(s));
        report = tenant::runCorun(specs, copts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    tenant::printCorunReport(report);
    if (o.simcheckDigest) {
        std::printf("digest     %s\n",
                    simcheck::digestToString(report.digest()).c_str());
    }
    if (!o.csv.empty()) {
        tenant::writeQosCsv(o.csv, report, execModeName(o.mode));
        std::printf("QoS csv    written to %s\n", o.csv.c_str());
    }
    if (o.heatmap == "banks") {
        std::fputs(obs::renderTenantBankHeatmaps(report.obsSnapshot)
                       .c_str(),
                   stdout);
    }
    if (!o.traceOut.empty())
        std::printf("trace      written to %s\n", o.traceOut.c_str());
    return report.allValid ? 0 : 1;
}

/** Parse "wl[:weight],..." into serving classes (empty: defaults). */
std::vector<serve::ServeClass>
parseServeMix(const std::string &spec)
{
    std::vector<serve::ServeClass> classes;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        serve::ServeClass cls;
        if (const std::size_t colon = item.find(':');
            colon != std::string::npos) {
            cls.weight = std::atof(item.substr(colon + 1).c_str());
            item.resize(colon);
        }
        cls.workload = item;
        classes.push_back(cls);
    }
    return classes;
}

int
cmdServe(const Options &o)
{
    serve::ServeOptions sopts;
    sopts.mode = o.mode;
    sopts.allocOpts.policy = o.policy;
    sopts.allocOpts.hybridH = o.h;
    sopts.machine.bankNumbering = o.numbering;
    if (o.simcheck)
        sopts.machine.simcheck.audit = true;
    if (o.simcheckWatchdogSet)
        sopts.machine.simcheck.watchdogStallEpochs = o.simcheckWatchdog;
    sopts.policy = o.sched;
    sopts.quantumEpochs = o.quantum;
    sopts.quick = o.quick;
    if (o.serveSeed)
        sopts.seed = o.serveSeed;
    sopts.numRequests = o.requests;
    sopts.arrivalsPerMcycle = o.rate;
    sopts.burstiness = o.burstiness;
    sopts.slots = o.slots;
    sopts.queueCapacity = o.queueCap;
    if (o.serveMaxCycles)
        sopts.maxCycles = o.serveMaxCycles;
    sopts.reaffinity = !o.noReaffinity;
    sopts.obs.tracePath = o.traceOut;
    sopts.obs.explainPath = o.explainOut;

    // Bad mixes, rates and fault targets are config errors: surface
    // them as clean CLI errors, not backtraces.
    serve::ServeReport report;
    try {
        if (!o.faultSchedule.empty())
            sopts.faultSchedule =
                sim::parseFaultSchedule(o.faultSchedule);
        if (!o.mix.empty())
            sopts.classes = parseServeMix(o.mix);
        const traffic::TrafficConfig tc =
            applyTrafficOptions(o, sopts.machine);
        sopts.background = traffic::makeBackgroundSpecs(tc);
        report = serve::runServe(sopts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    serve::printServeReport(report, execModeName(o.mode));
    if (o.simcheckDigest) {
        std::printf("digest     %s\n",
                    simcheck::digestToString(report.digest()).c_str());
    }
    if (!o.csv.empty()) {
        std::ofstream out(o.csv);
        out << serve::serveCsvHeader() << '\n';
        serve::appendServeCsv(out, report, execModeName(o.mode));
        std::printf("serve csv  written to %s\n", o.csv.c_str());
    }
    if (!o.traceOut.empty())
        std::printf("trace      written to %s\n", o.traceOut.c_str());
    if (!o.explainOut.empty())
        std::printf("explain    written to %s\n", o.explainOut.c_str());
    return report.allValid ? 0 : 1;
}

int
cmdChaos(const Options &o)
{
    // Bundle/config problems are clean CLI errors, not backtraces.
    try {
        if (!o.replayPath.empty()) {
            const chaos::ReplayResult r =
                chaos::replayBundleFile(o.replayPath);
            std::printf(
                "replay     %s\n"
                "campaign   #%u: %u requests over %llu cycles, "
                "schedule %s\n"
                "expected   [%s] %s\n"
                "got        [%s] %s\n"
                "reproduced %s\n",
                o.replayPath.c_str(), r.campaign.index,
                r.campaign.opts.numRequests,
                (unsigned long long)r.campaign.opts.maxCycles,
                sim::formatFaultSchedule(r.campaign.opts.faultSchedule)
                    .c_str(),
                r.expected.errorType.c_str(),
                r.expected.signature.c_str(),
                r.got.failed ? r.got.errorType.c_str() : "pass",
                r.got.failed ? r.got.signature.c_str() : "-",
                r.reproduced ? "yes" : "NO");
            return r.reproduced ? 0 : 1;
        }

        chaos::FuzzOptions f;
        if (o.serveSeed)
            f.seed = o.serveSeed;
        f.campaigns = o.campaigns;
        f.jobs = o.jobs;
        if (f.jobs == 0) {
            if (const char *env = std::getenv("AFFALLOC_JOBS"))
                f.jobs = unsigned(std::strtoul(env, nullptr, 10));
            if (f.jobs == 0)
                f.jobs = 1;
        }
        f.plantSpareKeying = o.plant == "spare-keying";
        if (o.simcheckWatchdogSet)
            f.watchdogStallEpochs = o.simcheckWatchdog;
        f.bundleDir = o.bundleDir;

        const chaos::FuzzReport rep = chaos::runFuzz(f);
        std::printf("chaos      seed %llu | %u campaigns | jobs %u%s\n",
                    (unsigned long long)f.seed, rep.campaigns, f.jobs,
                    f.plantSpareKeying ? " | planted spare-keying"
                                       : "");
        for (const chaos::CampaignResult &r : rep.results) {
            if (!r.verdict.failed)
                continue;
            std::printf("  #%-3u FAIL %s\n"
                        "       sig    %s\n"
                        "       was    %s\n"
                        "       shrunk %s (requests %u, horizon %llu, "
                        "%u oracle runs)\n",
                        r.index, r.verdict.klass.c_str(),
                        r.verdict.signature.c_str(),
                        r.schedule.empty() ? "(no faults)"
                                           : r.schedule.c_str(),
                        sim::formatFaultSchedule(
                            r.shrunk.opts.faultSchedule)
                                .empty()
                            ? "(no faults)"
                            : sim::formatFaultSchedule(
                                  r.shrunk.opts.faultSchedule)
                                  .c_str(),
                        r.shrunk.opts.numRequests,
                        (unsigned long long)r.shrunk.opts.maxCycles,
                        r.shrinkOracleRuns);
            if (!r.bundlePath.empty())
                std::printf("       bundle %s\n", r.bundlePath.c_str());
        }
        std::printf("verdict    %u/%u campaigns clean | digest "
                    "0x%016llx\n",
                    rep.campaigns - rep.failures, rep.campaigns,
                    (unsigned long long)rep.digest);
        return rep.failures ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0 ||
            std::strcmp(argv[i], "version") == 0)
            printVersion();
    }
    // Install the process-wide sim-threads default before any
    // MachineConfig is constructed, and open --prof-out up front;
    // invalid values/paths are clean CLI errors, not backtraces (or
    // worse, harvest-time failures after a long run).
    try {
        harness::applySimThreads(argc, argv);
        harness::applyProfFlags(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    const Options o = parse(argc, argv);
    if (o.command == "topo")
        return cmdTopo(o);
    if (o.command == "layout")
        return cmdLayout(o);
    if (o.command == "run")
        return cmdRun(o);
    if (o.command == "corun")
        return cmdCorun(o);
    if (o.command == "serve")
        return cmdServe(o);
    if (o.command == "chaos")
        return cmdChaos(o);
    usage();
}
