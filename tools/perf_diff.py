#!/usr/bin/env python3
"""Compare two perf artifacts and flag regressions.

Accepts either format this repo produces:

  * BENCH_overall.json (run_benches.sh --timings): per-bench wall-clock
    seconds, optional per-bench "profiles" (phase breakdown, peak RSS).
  * A raw --prof-out export (schema "affalloc-prof-1"): wall_ns,
    phase tree, RSS.

Usage:
    perf_diff.py BASELINE CURRENT [--threshold PCT] [--rss-threshold PCT]
                 [--min-seconds S]
    perf_diff.py --selftest

Exit codes (CI contract):
    0  no regression beyond the thresholds
    1  at least one regression beyond a threshold (CI treats as warning)
    2  schema/parse error — unreadable file, wrong shape (CI fails)

Wall-clock comparisons are inherently noisy; the default threshold is
deliberately loose (10%) and benches faster than --min-seconds are
reported but never flagged. Memory (peak RSS) gets its own threshold
because it is stable run-to-run.
"""

import argparse
import json
import sys

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SCHEMA = 2

PROF_SCHEMA = "affalloc-prof-1"


class SchemaError(Exception):
    pass


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise SchemaError(f"{path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        raise SchemaError(f"{path}: not valid JSON: {e}")


def classify(doc, path):
    """'overall' for BENCH_overall.json, 'prof' for a --prof-out file."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: expected a JSON object at top level")
    if doc.get("schema") == PROF_SCHEMA:
        return "prof"
    if "benches" in doc and "total_seconds" in doc:
        if not isinstance(doc["benches"], dict):
            raise SchemaError(f"{path}: 'benches' must be an object")
        return "overall"
    raise SchemaError(
        f"{path}: neither a BENCH_overall.json (benches/total_seconds) "
        f"nor an {PROF_SCHEMA} profile"
    )


def pct(new, old):
    return 100.0 * (new - old) / old


def fmt_delta(new, old):
    return f"{old:.3f} -> {new:.3f} ({pct(new, old):+.1f}%)"


class Report:
    def __init__(self):
        self.regressions = []
        self.notes = []

    def regress(self, msg):
        self.regressions.append(msg)

    def note(self, msg):
        self.notes.append(msg)

    def emit(self, out=sys.stdout):
        for n in self.notes:
            print(f"  {n}", file=out)
        for r in self.regressions:
            print(f"REGRESSION: {r}", file=out)
        if not self.regressions:
            print("perf_diff: OK (no regression beyond thresholds)",
                  file=out)
        else:
            print(f"perf_diff: {len(self.regressions)} regression(s)",
                  file=out)


def diff_overall(base, cur, args, rep):
    b_benches, c_benches = base["benches"], cur["benches"]
    for name in sorted(b_benches):
        if name not in c_benches:
            rep.note(f"bench '{name}' missing from current run")
            continue
        old, new = float(b_benches[name]), float(c_benches[name])
        if old <= 0:
            continue
        line = f"{name}: {fmt_delta(new, old)}"
        if (
            old >= args.min_seconds
            and new >= args.min_seconds
            and pct(new, old) > args.threshold
        ):
            rep.regress(line)
        else:
            rep.note(line)
    old_t, new_t = float(base["total_seconds"]), float(cur["total_seconds"])
    line = f"total_seconds: {fmt_delta(new_t, old_t)}"
    if old_t > 0 and pct(new_t, old_t) > args.threshold:
        rep.regress(line)
    else:
        rep.note(line)

    b_prof = base.get("profiles") or {}
    c_prof = cur.get("profiles") or {}
    for name in sorted(b_prof):
        if name not in c_prof:
            continue
        old = int(b_prof[name].get("peak_rss_kb", 0))
        new = int(c_prof[name].get("peak_rss_kb", 0))
        if old <= 0 or new <= 0:
            continue
        line = f"{name} peak_rss_kb: {fmt_delta(new, old)}"
        if pct(new, old) > args.rss_threshold:
            rep.regress(line)
        else:
            rep.note(line)


def diff_prof(base, cur, args, rep):
    for doc, path_label in ((base, "baseline"), (cur, "current")):
        if not isinstance(doc.get("phases"), list):
            raise SchemaError(f"{path_label} profile: 'phases' missing")
    old_w, new_w = int(base.get("wall_ns", 0)), int(cur.get("wall_ns", 0))
    if old_w > 0 and new_w > 0:
        line = f"wall_ns: {fmt_delta(new_w, old_w)}"
        min_ns = args.min_seconds * 1e9
        if old_w >= min_ns and new_w >= min_ns and \
                pct(new_w, old_w) > args.threshold:
            rep.regress(line)
        else:
            rep.note(line)
    def flatten(nodes, acc):
        """Sum inclusive ns per phase name across the whole tree."""
        for p in nodes:
            acc[p["name"]] = acc.get(p["name"], 0) + int(p["inclusive_ns"])
            flatten(p.get("children", []) or [], acc)
        return acc

    old_phases = flatten(base["phases"], {})
    for name, new in sorted(flatten(cur["phases"], {}).items()):
        old = old_phases.get(name, 0)
        if old <= 0 or new <= 0:
            continue
        line = f"phase {name}: {fmt_delta(new, old)}"
        min_ns = args.min_seconds * 1e9
        if old >= min_ns and new >= min_ns and \
                pct(new, old) > args.threshold:
            rep.regress(line)
        else:
            rep.note(line)
    old_rss = int(base.get("rss", {}).get("peak_kb", 0))
    new_rss = int(cur.get("rss", {}).get("peak_kb", 0))
    if old_rss > 0 and new_rss > 0:
        line = f"peak_rss_kb: {fmt_delta(new_rss, old_rss)}"
        if pct(new_rss, old_rss) > args.rss_threshold:
            rep.regress(line)
        else:
            rep.note(line)


def run_diff(argv):
    ap = argparse.ArgumentParser(
        prog="perf_diff.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="wall-clock regression threshold in percent "
                         "(default 10)")
    ap.add_argument("--rss-threshold", type=float, default=25.0,
                    help="peak-RSS regression threshold in percent "
                         "(default 25)")
    ap.add_argument("--min-seconds", type=float, default=0.5,
                    help="ignore wall-clock entries shorter than this "
                         "in either run (noise floor, default 0.5)")
    args = ap.parse_args(argv)

    base, cur = load(args.baseline), load(args.current)
    kind_b = classify(base, args.baseline)
    kind_c = classify(cur, args.current)
    if kind_b != kind_c:
        raise SchemaError(
            f"cannot compare a '{kind_b}' file with a '{kind_c}' file")

    rep = Report()
    if kind_b == "overall":
        diff_overall(base, cur, args, rep)
    else:
        diff_prof(base, cur, args, rep)
    rep.emit()
    return EXIT_REGRESSION if rep.regressions else EXIT_OK


# --------------------------------------------------------------- selftest

FIXTURE_BASE = {
    "quick": True, "jobs": 1, "sim_threads": 1,
    "git_revision": "abc1234", "build_type": "Release",
    "host_threads": 4,
    "benches": {"fig15_affine_scale": 10.0, "fig19_degree": 8.0,
                "fig04_affine_offset": 0.1},
    "prof": True,
    "profiles": {
        "fig15_affine_scale": {"schema": PROF_SCHEMA, "wall_ns": 10_000,
                               "peak_rss_kb": 50_000, "phases": []},
    },
    "total_seconds": 18.1,
}


def _with_benches(**over):
    doc = json.loads(json.dumps(FIXTURE_BASE))
    doc["benches"].update(over.pop("benches", {}))
    doc.update(over)
    return doc


def selftest():
    import tempfile, os

    failures = []

    def run_case(name, base_doc, cur_doc, expect_rc, extra_args=()):
        with tempfile.TemporaryDirectory() as d:
            bp, cp = os.path.join(d, "base.json"), os.path.join(d, "cur.json")
            for path, doc in ((bp, base_doc), (cp, cur_doc)):
                with open(path, "w") as f:
                    if isinstance(doc, str):
                        f.write(doc)
                    else:
                        json.dump(doc, f)
            rc = main([bp, cp, *extra_args])
            if rc != expect_rc:
                failures.append(f"{name}: expected exit {expect_rc}, "
                                f"got {rc}")
            else:
                print(f"selftest: {name}: OK (exit {rc})")

    # The acceptance fixture: a synthetic 50% wall-clock regression on
    # one bench must flag (exit 1) at the default 10% threshold.
    regressed = _with_benches(
        benches={"fig15_affine_scale": 15.0}, total_seconds=23.1)
    run_case("synthetic-50pct-regression", FIXTURE_BASE, regressed,
             EXIT_REGRESSION)

    # Same inputs: clean pass.
    run_case("identical", FIXTURE_BASE, FIXTURE_BASE, EXIT_OK)

    # 5% drift stays under the default 10% threshold...
    drift = _with_benches(
        benches={"fig15_affine_scale": 10.5}, total_seconds=18.6)
    run_case("5pct-drift-ok", FIXTURE_BASE, drift, EXIT_OK)
    # ...but flags at --threshold 2.
    run_case("5pct-drift-tight-threshold", FIXTURE_BASE, drift,
             EXIT_REGRESSION, ["--threshold", "2"])

    # A 50% jump on a sub-min-seconds bench is noise, not a regression.
    tiny = _with_benches(benches={"fig04_affine_offset": 0.15})
    run_case("tiny-bench-noise-ignored", FIXTURE_BASE, tiny, EXIT_OK)

    # Peak-RSS regression beyond --rss-threshold flags.
    rss = json.loads(json.dumps(FIXTURE_BASE))
    rss["profiles"]["fig15_affine_scale"]["peak_rss_kb"] = 90_000
    run_case("rss-regression", FIXTURE_BASE, rss, EXIT_REGRESSION)

    # Malformed input and wrong shapes are schema errors (exit 2).
    run_case("malformed-json", FIXTURE_BASE, "{not json", EXIT_SCHEMA)
    run_case("wrong-shape", FIXTURE_BASE, {"hello": 1}, EXIT_SCHEMA)

    # Raw profile pair: regression in a phase flags.
    prof_base = {
        "schema": PROF_SCHEMA, "wall_ns": 10_000_000_000,
        "rss": {"peak_kb": 1000},
        "phases": [{"name": "machine/epoch.record",
                    "inclusive_ns": 8_000_000_000,
                    "exclusive_ns": 8_000_000_000, "count": 5,
                    "children": []}],
    }
    prof_cur = json.loads(json.dumps(prof_base))
    prof_cur["wall_ns"] = 16_000_000_000
    prof_cur["phases"][0]["inclusive_ns"] = 14_000_000_000
    run_case("prof-pair-regression", prof_base, prof_cur, EXIT_REGRESSION)
    run_case("prof-pair-identical", prof_base, prof_base, EXIT_OK)

    # A regression buried in a *nested* phase is still found: the
    # comparison flattens the tree by name.
    nested_base = json.loads(json.dumps(prof_base))
    nested_base["phases"][0]["children"] = [
        {"name": "machine/epoch.replay", "inclusive_ns": 4_000_000_000,
         "exclusive_ns": 4_000_000_000, "count": 5, "children": []}]
    nested_cur = json.loads(json.dumps(nested_base))
    nested_cur["phases"][0]["children"][0]["inclusive_ns"] = 7_000_000_000
    run_case("nested-phase-regression", nested_base, nested_cur,
             EXIT_REGRESSION)

    # Mixed kinds cannot be compared.
    run_case("mixed-kinds", FIXTURE_BASE, prof_base, EXIT_SCHEMA)

    if failures:
        for f in failures:
            print(f"selftest FAILED: {f}", file=sys.stderr)
        return 1
    print("selftest: all cases passed")
    return 0


def main(argv):
    try:
        return run_diff(argv)
    except SchemaError as e:
        print(f"perf_diff: schema error: {e}", file=sys.stderr)
        return EXIT_SCHEMA
    except SystemExit as e:
        # argparse error (bad flags) is a usage error, not a regression.
        return EXIT_SCHEMA if e.code not in (0, None) else 0


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "--selftest":
        sys.exit(selftest())
    sys.exit(main(sys.argv[1:]))
