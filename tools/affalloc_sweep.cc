/**
 * @file
 * Batch sweep runner: runs a chosen workload over the full
 * (mode x policy) grid and writes one comparison CSV, ready for
 * plotting. Complements affalloc_cli (single runs) for users doing
 * design-space exploration.
 *
 *   affalloc_sweep <workload> [--scale N] [--iters N] [--out FILE]
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/trace.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: affalloc_sweep <workload> [--scale N] "
                     "[--iters N] [--out FILE]\n");
        return 2;
    }
    const std::string workload = argv[1];
    std::uint32_t scale = 13;
    int iters = 4;
    std::string out = "sweep.csv";
    for (int i = 2; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--scale"))
            scale = std::uint32_t(std::atoi(argv[i + 1]));
        else if (!std::strcmp(argv[i], "--iters"))
            iters = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--out"))
            out = argv[i + 1];
    }

    graph::KroneckerParams kp;
    kp.scale = scale;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);

    std::function<RunResult(const RunConfig &)> runner;
    if (workload == "vecadd") {
        runner = [&](const RunConfig &rc) {
            VecAddParams p;
            p.layout = rc.mode == ExecMode::affAlloc
                           ? VecAddLayout::affinity
                           : VecAddLayout::heapLinear;
            return runVecAdd(rc, p);
        };
    } else if (workload == "hotspot") {
        runner = [&](const RunConfig &rc) {
            HotspotParams p;
            p.iters = iters;
            return runHotspot(rc, p);
        };
    } else if (workload == "pr_push") {
        runner = [&](const RunConfig &rc) {
            GraphParams p;
            p.graph = &g;
            p.iters = iters;
            return runPageRankPush(rc, p);
        };
    } else if (workload == "bfs") {
        runner = [&](const RunConfig &rc) {
            GraphParams p;
            p.graph = &g;
            return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
        };
    } else if (workload == "sssp") {
        runner = [&](const RunConfig &rc) {
            GraphParams p;
            p.graph = &g;
            return runSssp(rc, p);
        };
    } else if (workload == "bin_tree") {
        runner = [&](const RunConfig &rc) {
            return runBinTree(rc, BinTreeParams{});
        };
    } else if (workload == "hash_join") {
        runner = [&](const RunConfig &rc) {
            return runHashJoin(rc, HashJoinParams{});
        };
    } else if (workload == "link_list") {
        runner = [&](const RunConfig &rc) {
            return runLinkList(rc, LinkListParams{});
        };
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return 2;
    }

    const std::vector<std::pair<std::string, RunConfig>> grid = [] {
        std::vector<std::pair<std::string, RunConfig>> v;
        v.emplace_back("In-Core", RunConfig::forMode(ExecMode::inCore));
        v.emplace_back("Near-L3", RunConfig::forMode(ExecMode::nearL3));
        for (auto [name, policy, h] :
             {std::tuple{"Aff-Rnd", alloc::BankPolicy::random, 0.0},
              std::tuple{"Aff-Lnr", alloc::BankPolicy::linear, 0.0},
              std::tuple{"Aff-MinHop", alloc::BankPolicy::minHop, 0.0},
              std::tuple{"Aff-Hybrid5", alloc::BankPolicy::hybrid,
                         5.0}}) {
            RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
            rc.allocOpts.policy = policy;
            rc.allocOpts.hybridH = h;
            v.emplace_back(name, rc);
        }
        return v;
    }();

    std::vector<std::string> labels;
    for (const auto &[label, rc] : grid)
        labels.push_back(label);
    harness::Comparison cmp(labels);

    std::vector<RunResult> runs;
    for (const auto &[label, rc] : grid) {
        std::printf("running %s / %s...\n", workload.c_str(),
                    label.c_str());
        runs.push_back(runner(rc));
    }
    cmp.add(workload, std::move(runs));
    cmp.print("sweep: " + workload, /*speedup baseline=*/1,
              /*traffic baseline=*/0);
    harness::writeComparisonCsv(cmp, labels, out);
    std::printf("CSV written to %s\n", out.c_str());
    return cmp.allValid() ? 0 : 1;
}
