/**
 * @file
 * Reproduces Fig. 19: Aff-Alloc speedup vs. average node degree on
 * synthetic power-law graphs with a fixed edge count. Higher degree
 * means consecutive edges in a node share destinations' banks more
 * often, so fine-grained placement pays off more.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 19 - average degree sweep");

    const std::uint64_t total_edges = quick ? 512 * 1024 : 4'000'000;

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    std::printf("%-8s %6s %10s | %9s %9s\n", "wl", "D", "|V|",
                "Min-Hops", "Hybrid-5");
    for (std::uint32_t degree : {4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto n =
            static_cast<graph::VertexId>(total_edges / degree);
        const auto g =
            graph::powerLaw(n, total_edges, 2.2, 77, /*weighted=*/true);
        GraphParams p;
        p.graph = &g;
        p.iters = quick ? 2 : 8;

        // Fig. 19 normalizes to the Rnd policy. Sweep the 9 runs of
        // this degree before generating the next graph.
        std::vector<std::function<RunResult()>> points;
        for (const auto &[name, runner] : workloads) {
            points.push_back([&runner, &p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::random;
                return runner(rc, p);
            });
            points.push_back([&runner, &p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::minHop;
                return runner(rc, p);
            });
            points.push_back([&runner, &p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::hybrid;
                rc.allocOpts.hybridH = 5;
                return runner(rc, p);
            });
        }
        const std::vector<RunResult> results =
            harness::runSweep(jobs, points);

        std::vector<double> geo_min, geo_hyb;
        std::size_t at = 0;
        for (const auto &[name, runner] : workloads) {
            const RunResult &rnd = results[at++];
            const RunResult &min = results[at++];
            const RunResult &hyb = results[at++];

            const double sp_min =
                double(rnd.cycles()) / double(min.cycles());
            const double sp_hyb =
                double(rnd.cycles()) / double(hyb.cycles());
            geo_min.push_back(sp_min);
            geo_hyb.push_back(sp_hyb);
            std::printf("%-8s %6u %10u | %9.2f %9.2f%s\n", name.c_str(),
                        degree, n, sp_min, sp_hyb,
                        rnd.valid && min.valid && hyb.valid
                            ? ""
                            : "  INVALID");
        }
        std::printf("%-8s %6u %10s | %9.2f %9.2f\n\n", "geomean",
                    degree, "", sim::geomean(geo_min),
                    sim::geomean(geo_hyb));
    }
    std::printf("Expected shape (paper): speedup grows with degree "
                "(~1.5x at D=4 to ~2.4x at D=128):\nlonger sorted edge "
                "lists make a node's destinations land in the same or "
                "nearby banks.\n");
    return 0;
}
