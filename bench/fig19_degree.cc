/**
 * @file
 * Reproduces Fig. 19: Aff-Alloc speedup vs. average node degree on
 * synthetic power-law graphs with a fixed edge count. Higher degree
 * means consecutive edges in a node share destinations' banks more
 * often, so fine-grained placement pays off more.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 19 - average degree sweep");

    const std::uint64_t total_edges = quick ? 512 * 1024 : 4'000'000;

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    std::printf("%-8s %6s %10s | %9s %9s\n", "wl", "D", "|V|",
                "Min-Hops", "Hybrid-5");
    for (std::uint32_t degree : {4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto n =
            static_cast<graph::VertexId>(total_edges / degree);
        const auto g =
            graph::powerLaw(n, total_edges, 2.2, 77, /*weighted=*/true);
        GraphParams p;
        p.graph = &g;
        p.iters = quick ? 2 : 8;

        std::vector<double> geo_min, geo_hyb;
        for (const auto &[name, runner] : workloads) {
            // Fig. 19 normalizes to the Rnd policy.
            RunConfig rc_rnd = RunConfig::forMode(ExecMode::affAlloc);
            rc_rnd.allocOpts.policy = alloc::BankPolicy::random;
            const auto rnd = runner(rc_rnd, p);

            RunConfig rc_min = RunConfig::forMode(ExecMode::affAlloc);
            rc_min.allocOpts.policy = alloc::BankPolicy::minHop;
            const auto min = runner(rc_min, p);

            RunConfig rc_hyb = RunConfig::forMode(ExecMode::affAlloc);
            rc_hyb.allocOpts.policy = alloc::BankPolicy::hybrid;
            rc_hyb.allocOpts.hybridH = 5;
            const auto hyb = runner(rc_hyb, p);

            const double sp_min =
                double(rnd.cycles()) / double(min.cycles());
            const double sp_hyb =
                double(rnd.cycles()) / double(hyb.cycles());
            geo_min.push_back(sp_min);
            geo_hyb.push_back(sp_hyb);
            std::printf("%-8s %6u %10u | %9.2f %9.2f%s\n", name.c_str(),
                        degree, n, sp_min, sp_hyb,
                        rnd.valid && min.valid && hyb.valid
                            ? ""
                            : "  INVALID");
        }
        std::printf("%-8s %6u %10s | %9.2f %9.2f\n\n", "geomean",
                    degree, "", sim::geomean(geo_min),
                    sim::geomean(geo_hyb));
    }
    std::printf("Expected shape (paper): speedup grows with degree "
                "(~1.5x at D=4 to ~2.4x at D=128):\nlonger sorted edge "
                "lists make a node's destinations land in the same or "
                "nearby banks.\n");
    return 0;
}
