/**
 * @file
 * Reproduces Fig. 12 (the headline result) with Table 3 workloads:
 * speedup, energy efficiency and NoC traffic of In-Core, Near-L3 and
 * Aff-Alloc on the ten evaluated workloads. Speedup/energy are
 * normalized to Near-L3 and traffic to In-Core, as in the paper.
 * Per §6, `pr` selects the best direction per configuration (pull for
 * In-Core, push for the NSC modes) and `bfs` uses the best switching
 * heuristic per configuration.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

const ExecMode modes[3] = {ExecMode::inCore, ExecMode::nearL3,
                           ExecMode::affAlloc};

// Written once in main before any sweep point runs, read-only after.
harness::BenchSimCheck simcheckOpts;
harness::BenchObs obsOpts;

/** One row of the figure: a workload run under each of the 3 modes. */
struct Entry
{
    std::string name;
    std::function<RunResult(const RunConfig &, ExecMode)> run;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    simcheckOpts = harness::BenchSimCheck::parse(argc, argv);
    obsOpts = harness::BenchObs::parse(argc, argv);
    sim::MachineConfig cfg;
    simcheckOpts.apply(cfg);
    harness::printMachineBanner(cfg, "Fig. 12 - overall evaluation");
    if (simcheckOpts.faulty) {
        std::printf("Fault campaign: %u offline banks, %.0f%% offload "
                    "rejection (seeded, deterministic).\n\n",
                    cfg.faults.offlineBanks,
                    100.0 * cfg.faults.offloadRejectRate);
    }

    std::printf("Workload parameters (Table 3)%s:\n"
                "  pathfinder  affine      1.5M entries, 8 iters\n"
                "  srad        affine      1k x 2k, 8 iters\n"
                "  hotspot     affine      2k x 1k, 8 iters\n"
                "  hotspot3D   affine      256 x 1k x 8, 8 iters\n"
                "  pr/bfs/sssp linked CSR  Kronecker 128k V / ~4M E,\n"
                "                          A/B/C 0.57/0.19/0.19, "
                "w in [1,255]\n"
                "  link_list   ptr-chase   512 nodes/list, 1k lists\n"
                "  hash_join   ptr-chase   256k x 512k, hit rate 1/8\n"
                "  bin_tree    ptr-chase   128k nodes, 512k lookups\n\n",
                quick ? " (REDUCED: --quick)" : "");

    const double shrink = quick ? 0.125 : 1.0;
    graph::KroneckerParams kp;
    kp.scale = quick ? 14 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);

    harness::Comparison cmp({"In-Core", "Near-L3", "Aff-Alloc"});

    // Workload parameters are captured by value; the Kronecker graph
    // is shared read-only. Each sweep point then builds its own
    // machine, so all (workload, mode) pairs run independently.
    std::vector<Entry> entries;
    {
        PathfinderParams p;
        p.cols = std::uint64_t(1'500'000 * shrink);
        entries.push_back(
            {"pathfinder", [p](const RunConfig &rc, ExecMode) {
                 return runPathfinder(rc, p);
             }});
    }
    {
        HotspotParams p;
        if (quick) {
            p.rows = 512;
            p.cols = 512;
        }
        entries.push_back({"hotspot", [p](const RunConfig &rc, ExecMode) {
                               return runHotspot(rc, p);
                           }});
    }
    {
        SradParams p;
        if (quick) {
            p.rows = 512;
            p.cols = 512;
        }
        entries.push_back({"srad", [p](const RunConfig &rc, ExecMode) {
                               return runSrad(rc, p);
                           }});
    }
    {
        Hotspot3dParams p;
        if (quick) {
            p.ny = 256;
        }
        entries.push_back(
            {"hotspot3D", [p](const RunConfig &rc, ExecMode) {
                 return runHotspot3d(rc, p);
             }});
    }
    {
        GraphParams p;
        p.graph = &g;
        p.iters = quick ? 2 : 8;
        // §6: pull for In-Core, push for the NSC configurations.
        entries.push_back({"pr", [p](const RunConfig &rc, ExecMode m) {
                               return m == ExecMode::inCore
                                          ? runPageRankPull(rc, p)
                                          : runPageRankPush(rc, p);
                           }});
        entries.push_back({"bfs", [p](const RunConfig &rc, ExecMode m) {
                               return runBfs(rc, p,
                                             defaultBfsStrategy(m))
                                   .run;
                           }});
        entries.push_back({"sssp", [p](const RunConfig &rc, ExecMode) {
                               return runSssp(rc, p);
                           }});
    }
    {
        LinkListParams p;
        if (quick) {
            p.numLists = 256;
            p.nodesPerList = 128;
        }
        entries.push_back(
            {"link_list", [p](const RunConfig &rc, ExecMode) {
                 return runLinkList(rc, p);
             }});
    }
    {
        HashJoinParams p;
        if (quick) {
            p.buildRows = 32 * 1024;
            p.probeRows = 64 * 1024;
            p.numBuckets = 8 * 1024;
        }
        entries.push_back(
            {"hash_join", [p](const RunConfig &rc, ExecMode) {
                 return runHashJoin(rc, p);
             }});
    }
    {
        BinTreeParams p;
        if (quick) {
            p.numNodes = 32 * 1024;
            p.numLookups = 64 * 1024;
        }
        entries.push_back(
            {"bin_tree", [p](const RunConfig &rc, ExecMode) {
                 return runBinTree(rc, p);
             }});
    }

    std::vector<std::function<RunResult()>> points;
    for (const auto &e : entries) {
        for (ExecMode m : modes) {
            points.push_back([&e, m] {
                RunConfig rc = RunConfig::forMode(m);
                simcheckOpts.apply(rc.machine);
                obsOpts.apply(rc, e.name, execModeName(m));
                return e.run(rc, m);
            });
        }
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    for (std::size_t i = 0; i < entries.size(); ++i) {
        cmp.add(entries[i].name,
                {results[i * 3 + 0], results[i * 3 + 1],
                 results[i * 3 + 2]});
    }

    // Paper normalization: speedup/energy to Near-L3, traffic to
    // In-Core.
    cmp.print("Fig. 12", /*speedup baseline=*/1, /*traffic baseline=*/0);
    simcheckOpts.printDigests(cmp);
    obsOpts.report(cmp);

    std::printf(
        "Headline comparison (paper): Aff-Alloc = 2.26x speedup / 1.76x "
        "energy over Near-L3,\n7.53x / 4.69x over In-Core, 72%% traffic "
        "reduction vs Near-L3, 34%% NoC utilization.\n"
        "This run: Aff-Alloc = %.2fx speedup / %.2fx energy over "
        "Near-L3, %.2fx / %.2fx over In-Core,\n%.0f%% traffic reduction "
        "vs Near-L3.\n",
        cmp.geomeanSpeedup(2, 1), cmp.geomeanEnergyEff(2, 1),
        cmp.geomeanSpeedup(2, 0), cmp.geomeanEnergyEff(2, 0),
        100.0 * (1.0 - cmp.meanHops(2, 0) / cmp.meanHops(1, 0)));
    return 0;
}
