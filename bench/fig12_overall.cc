/**
 * @file
 * Reproduces Fig. 12 (the headline result) with Table 3 workloads:
 * speedup, energy efficiency and NoC traffic of In-Core, Near-L3 and
 * Aff-Alloc on the ten evaluated workloads. Speedup/energy are
 * normalized to Near-L3 and traffic to In-Core, as in the paper.
 * Per §6, `pr` selects the best direction per configuration (pull for
 * In-Core, push for the NSC modes) and `bfs` uses the best switching
 * heuristic per configuration.
 */

#include <cstdio>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

const ExecMode modes[3] = {ExecMode::inCore, ExecMode::nearL3,
                           ExecMode::affAlloc};

harness::BenchSimCheck simcheckOpts;

template <typename F>
std::vector<RunResult>
runAll(F &&f)
{
    std::vector<RunResult> out;
    for (ExecMode m : modes) {
        RunConfig rc = RunConfig::forMode(m);
        simcheckOpts.apply(rc.machine);
        out.push_back(f(rc, m));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    simcheckOpts = harness::BenchSimCheck::parse(argc, argv);
    sim::MachineConfig cfg;
    simcheckOpts.apply(cfg);
    harness::printMachineBanner(cfg, "Fig. 12 - overall evaluation");
    if (simcheckOpts.faulty) {
        std::printf("Fault campaign: %u offline banks, %.0f%% offload "
                    "rejection (seeded, deterministic).\n\n",
                    cfg.faults.offlineBanks,
                    100.0 * cfg.faults.offloadRejectRate);
    }

    std::printf("Workload parameters (Table 3)%s:\n"
                "  pathfinder  affine      1.5M entries, 8 iters\n"
                "  srad        affine      1k x 2k, 8 iters\n"
                "  hotspot     affine      2k x 1k, 8 iters\n"
                "  hotspot3D   affine      256 x 1k x 8, 8 iters\n"
                "  pr/bfs/sssp linked CSR  Kronecker 128k V / ~4M E,\n"
                "                          A/B/C 0.57/0.19/0.19, "
                "w in [1,255]\n"
                "  link_list   ptr-chase   512 nodes/list, 1k lists\n"
                "  hash_join   ptr-chase   256k x 512k, hit rate 1/8\n"
                "  bin_tree    ptr-chase   128k nodes, 512k lookups\n\n",
                quick ? " (REDUCED: --quick)" : "");

    const double shrink = quick ? 0.125 : 1.0;
    graph::KroneckerParams kp;
    kp.scale = quick ? 14 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);

    harness::Comparison cmp({"In-Core", "Near-L3", "Aff-Alloc"});

    {
        PathfinderParams p;
        p.cols = std::uint64_t(1'500'000 * shrink);
        cmp.add("pathfinder", runAll([&](const RunConfig &rc, ExecMode) {
                    return runPathfinder(rc, p);
                }));
    }
    {
        HotspotParams p;
        if (quick) {
            p.rows = 512;
            p.cols = 512;
        }
        cmp.add("hotspot", runAll([&](const RunConfig &rc, ExecMode) {
                    return runHotspot(rc, p);
                }));
    }
    {
        SradParams p;
        if (quick) {
            p.rows = 512;
            p.cols = 512;
        }
        cmp.add("srad", runAll([&](const RunConfig &rc, ExecMode) {
                    return runSrad(rc, p);
                }));
    }
    {
        Hotspot3dParams p;
        if (quick) {
            p.ny = 256;
        }
        cmp.add("hotspot3D", runAll([&](const RunConfig &rc, ExecMode) {
                    return runHotspot3d(rc, p);
                }));
    }
    {
        GraphParams p;
        p.graph = &g;
        p.iters = quick ? 2 : 8;
        // §6: pull for In-Core, push for the NSC configurations.
        cmp.add("pr", runAll([&](const RunConfig &rc, ExecMode m) {
                    return m == ExecMode::inCore
                               ? runPageRankPull(rc, p)
                               : runPageRankPush(rc, p);
                }));
        cmp.add("bfs", runAll([&](const RunConfig &rc, ExecMode m) {
                    return runBfs(rc, p, defaultBfsStrategy(m)).run;
                }));
        cmp.add("sssp", runAll([&](const RunConfig &rc, ExecMode) {
                    return runSssp(rc, p);
                }));
    }
    {
        LinkListParams p;
        if (quick) {
            p.numLists = 256;
            p.nodesPerList = 128;
        }
        cmp.add("link_list", runAll([&](const RunConfig &rc, ExecMode) {
                    return runLinkList(rc, p);
                }));
    }
    {
        HashJoinParams p;
        if (quick) {
            p.buildRows = 32 * 1024;
            p.probeRows = 64 * 1024;
            p.numBuckets = 8 * 1024;
        }
        cmp.add("hash_join", runAll([&](const RunConfig &rc, ExecMode) {
                    return runHashJoin(rc, p);
                }));
    }
    {
        BinTreeParams p;
        if (quick) {
            p.numNodes = 32 * 1024;
            p.numLookups = 64 * 1024;
        }
        cmp.add("bin_tree", runAll([&](const RunConfig &rc, ExecMode) {
                    return runBinTree(rc, p);
                }));
    }

    // Paper normalization: speedup/energy to Near-L3, traffic to
    // In-Core.
    cmp.print("Fig. 12", /*speedup baseline=*/1, /*traffic baseline=*/0);
    simcheckOpts.printDigests(cmp);

    std::printf(
        "Headline comparison (paper): Aff-Alloc = 2.26x speedup / 1.76x "
        "energy over Near-L3,\n7.53x / 4.69x over In-Core, 72%% traffic "
        "reduction vs Near-L3, 34%% NoC utilization.\n"
        "This run: Aff-Alloc = %.2fx speedup / %.2fx energy over "
        "Near-L3, %.2fx / %.2fx over In-Core,\n%.0f%% traffic reduction "
        "vs Near-L3.\n",
        cmp.geomeanSpeedup(2, 1), cmp.geomeanEnergyEff(2, 1),
        cmp.geomeanSpeedup(2, 0), cmp.geomeanEnergyEff(2, 0),
        100.0 * (1.0 - cmp.meanHops(2, 0) / cmp.meanHops(1, 0)));
    return 0;
}
