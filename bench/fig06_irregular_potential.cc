/**
 * @file
 * Reproduces Fig. 6: the potential of irregular data layout. The CSR
 * edge array is broken into chunks of 4 kB / 1 kB / 256 B / 64 B,
 * each freely mapped to the bank minimizing its indirect traffic
 * (subject to 2% load imbalance), plus an ideal configuration with
 * zero indirect hops. Executed under Near-L3 on the five graph
 * kernels of the figure; speedup and hops are normalized to the
 * unmodified Near-L3 baseline ("Base").
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(
        cfg, "Fig. 6 - irregular layout potential (chunked edge remap)");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17; // Table 3: 128k vertices, ~4M edges
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);
    std::printf("graph: %u vertices, %llu edges (Kronecker %g/%g/%g)\n\n",
                g.numVertices, (unsigned long long)g.numEdges(), kp.a,
                kp.b, kp.c);

    struct Config
    {
        std::string label;
        EdgeLayout layout;
        std::uint32_t chunk;
        bool ideal;
    };
    const std::vector<Config> configs = {
        {"Base", EdgeLayout::csr, 0, false},
        {"Ind-4kB", EdgeLayout::chunkRemap, 4096, false},
        {"Ind-1kB", EdgeLayout::chunkRemap, 1024, false},
        {"Ind-256B", EdgeLayout::chunkRemap, 256, false},
        {"Ind-64B", EdgeLayout::chunkRemap, 64, false},
        {"Ind-Ideal", EdgeLayout::csr, 0, true},
    };

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs_push", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, BfsStrategy::pushOnly).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
        {"pr_pull", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPull(rc, p);
         }},
        {"bfs_pull", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, BfsStrategy::pullOnly).run;
         }},
    };

    std::vector<std::string> labels;
    for (const auto &c : configs)
        labels.push_back(c.label);
    harness::Comparison cmp(labels);

    // One sweep point per (workload, config); the shared graph is
    // read-only across points.
    std::vector<std::function<RunResult()>> points;
    for (const auto &[name, runner] : workloads) {
        for (const auto &c : configs) {
            points.push_back([&g, quick, c, runner] {
                GraphParams p;
                p.graph = &g;
                p.iters = quick ? 2 : 8;
                p.layout = c.layout;
                p.chunkBytes = c.chunk;
                p.idealIndirect = c.ideal;
                return runner(RunConfig::forMode(ExecMode::nearL3), p);
            });
        }
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    std::size_t at = 0;
    for (const auto &[name, runner] : workloads) {
        std::vector<RunResult> runs(results.begin() + at,
                                    results.begin() + at +
                                        configs.size());
        at += configs.size();
        cmp.add(name, std::move(runs));
    }

    cmp.print("Fig. 6", /*speedup baseline=*/0, /*traffic baseline=*/0);
    std::printf("Expected shape (paper): finer chunks help more; "
                "Ind-64B ~2.1x, Ind-Ideal ~4.1x on the push kernels.\n");
    return 0;
}
