/**
 * @file
 * Reproduces Fig. 4: impact of affine data layout on vector addition.
 * C[i] = A[i] + B[i] with bank i forwarding to bank (i + delta) mod 64
 * for delta in {0, 4, ..., 64}, plus the In-Core baseline and a
 * randomized page placement. Reports speedup over In-Core and NoC
 * hops normalized to In-Core, broken into offload/data/control.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    const harness::BenchObs obs = harness::BenchObs::parse(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg,
                                "Fig. 4 - affine layout sweep (vecadd)");

    VecAddParams base;
    if (quick)
        base.n = 200'000;

    // Every sweep point builds its own machine inside runVecAdd, so
    // the points are independent; collect-then-print keeps the output
    // identical at any job count.
    std::vector<std::string> labels;
    std::vector<std::function<RunResult()>> points;

    labels.push_back("In-Core");
    points.push_back([base, &obs] {
        VecAddParams p = base;
        p.layout = VecAddLayout::heapLinear;
        RunConfig rc = RunConfig::forMode(ExecMode::inCore);
        obs.apply(rc, "vecadd", "In-Core");
        return runVecAdd(rc, p);
    });
    for (std::uint32_t delta = 0; delta <= 64; delta += 4) {
        char label[32];
        std::snprintf(label, sizeof(label), "Delta Bank %u", delta);
        labels.push_back(label);
        points.push_back([base, delta, &obs, label = std::string(label)] {
            VecAddParams p = base;
            p.layout = VecAddLayout::poolDelta;
            p.deltaBank = delta % 64;
            RunConfig rc = RunConfig::forMode(ExecMode::nearL3);
            obs.apply(rc, "vecadd", label);
            return runVecAdd(rc, p);
        });
    }
    labels.push_back("Random");
    points.push_back([base, &obs] {
        VecAddParams p = base;
        p.layout = VecAddLayout::heapRandom;
        RunConfig rc = RunConfig::forMode(ExecMode::nearL3);
        obs.apply(rc, "vecadd", "Random");
        return runVecAdd(rc, p);
    });

    const std::vector<RunResult> runs = harness::runSweep(jobs, points);

    struct Row
    {
        std::string label;
        RunResult run;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < runs.size(); ++i)
        rows.push_back({labels[i], runs[i]});

    const double base_cycles = double(rows[0].run.cycles());
    const double base_hops = double(rows[0].run.hops());
    std::printf("%-14s %9s | %8s %8s %8s %8s | %5s\n", "config",
                "speedup", "hops", "offload", "data", "control",
                "valid");
    double best = 0.0, worst = 1e30, random_speedup = 0.0;
    for (const auto &row : rows) {
        const double sp = base_cycles / double(row.run.cycles());
        std::printf("%-14s %9.2f | %8.3f %8.3f %8.3f %8.3f | %5s\n",
                    row.label.c_str(), sp,
                    double(row.run.hops()) / base_hops,
                    double(row.run.stats.hops[int(
                        TrafficClass::offload)]) /
                        base_hops,
                    double(row.run.stats.hops[int(TrafficClass::data)]) /
                        base_hops,
                    double(row.run.stats.hops[int(
                        TrafficClass::control)]) /
                        base_hops,
                    row.run.valid ? "yes" : "NO");
        if (row.label.rfind("Delta", 0) == 0) {
            best = std::max(best, sp);
            worst = std::min(worst, sp);
        }
        if (row.label == "Random")
            random_speedup = sp;
    }
    std::printf("\nNear-L3 speedup range across layouts: %.2fx .. %.2fx "
                "(paper: 1.1x .. 7.2x)\n"
                "Random layout reaches %.0f%% of aligned "
                "(paper: 42%%)\n",
                worst, best, 100.0 * random_speedup / best);
    for (const auto &row : rows)
        obs.reportRun(row.run, "vecadd", row.label);
    return 0;
}
