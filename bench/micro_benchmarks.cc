/**
 * @file
 * google-benchmark micro-benchmarks of the library's hot paths: the
 * allocator's affine and irregular fast paths per policy, bank
 * lookups through the IOT, mesh routing, NoC accounting, and the
 * cache tag model. These measure the *simulator's own* performance
 * (host time), complementing the figure benches which report
 * simulated time.
 */

#include <benchmark/benchmark.h>

#include "ds/pointer_structs.hh"
#include "nsc/stream_executor.hh"
#include "os/sim_os.hh"
#include "sim/rng.hh"
#include "workloads/run_context.hh"

using namespace affalloc;
using workloads::RunConfig;
using workloads::RunContext;

namespace
{

RunConfig
configFor(alloc::BankPolicy policy)
{
    RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
    rc.allocOpts.policy = policy;
    return rc;
}

void
BM_IrregularAlloc(benchmark::State &state)
{
    const auto policy = static_cast<alloc::BankPolicy>(state.range(0));
    RunContext ctx(configFor(policy));
    void *anchor = ctx.allocator.allocInterleaved(64 * 64, 64, 0);
    const void *aff[1] = {anchor};
    std::vector<void *> live;
    live.reserve(1 << 20);
    for (auto _ : state) {
        live.push_back(ctx.allocator.mallocAff(64, 1, aff));
        if (live.size() >= (1 << 16)) {
            state.PauseTiming();
            for (void *p : live)
                ctx.allocator.freeAff(p);
            live.clear();
            state.ResumeTiming();
        }
    }
    for (void *p : live)
        ctx.allocator.freeAff(p);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IrregularAlloc)
    ->Arg(int(alloc::BankPolicy::random))
    ->Arg(int(alloc::BankPolicy::linear))
    ->Arg(int(alloc::BankPolicy::minHop))
    ->Arg(int(alloc::BankPolicy::hybrid));

void
BM_AffineAlloc(benchmark::State &state)
{
    RunContext ctx(configFor(alloc::BankPolicy::hybrid));
    alloc::AffineArray req;
    req.elem_size = 4;
    req.num_elem = 1024;
    void *first = ctx.allocator.mallocAff(req);
    req.align_to = first;
    for (auto _ : state)
        benchmark::DoNotOptimize(ctx.allocator.mallocAff(req));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AffineAlloc);

void
BM_BankLookup(benchmark::State &state)
{
    RunContext ctx(configFor(alloc::BankPolicy::hybrid));
    void *arr = ctx.allocator.allocInterleaved(1 << 20, 64, 0);
    const Addr sim = ctx.machine.addressSpace().simAddrOf(arr);
    Rng rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctx.machine.bankOfSim(sim + rng.below(1 << 20)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankLookup);

void
BM_MeshRoute(benchmark::State &state)
{
    noc::Mesh mesh(8, 8);
    std::vector<noc::LinkId> links;
    Rng rng(6);
    for (auto _ : state) {
        links.clear();
        mesh.route(TileId(rng.below(64)), TileId(rng.below(64)), links);
        benchmark::DoNotOptimize(links.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRoute);

void
BM_NetworkSend(benchmark::State &state)
{
    sim::MachineConfig cfg;
    sim::Stats stats;
    noc::Network net(cfg, stats);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.send(TileId(rng.below(64)),
                                          TileId(rng.below(64)), 64,
                                          TrafficClass::data));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void
BM_CacheModelAccess(benchmark::State &state)
{
    mem::CacheModel cache(1 << 20, 16, 64, /*hashed_index=*/true);
    Rng rng(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 15), false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void
BM_StreamStep(benchmark::State &state)
{
    RunContext ctx(configFor(alloc::BankPolicy::hybrid));
    void *arr = ctx.allocator.allocInterleaved(1 << 20, 64, 0);
    const Addr sim = ctx.machine.addressSpace().simAddrOf(arr);
    ctx.machine.preloadL3Range(sim, 1 << 20);
    nsc::MigratingStream st(0);
    ctx.machine.beginEpoch();
    Rng rng(9);
    for (auto _ : state) {
        ctx.exec.streamStep(st, sim + (rng.below(1 << 14)) * 64, 8,
                            AccessType::read, false);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamStep);

} // namespace

BENCHMARK_MAIN();
