/**
 * @file
 * Reproduces Fig. 18: the BFS push/pull/switch timeline for each of
 * the three configurations. For every (configuration, strategy) pair
 * it prints total cycles and the per-iteration share of execution
 * time with its direction — the figure's horizontal bars.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 18 - BFS push vs pull");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;

    const std::vector<std::pair<std::string, BfsStrategy>> strategies = {
        {"Pull", BfsStrategy::pullOnly},
        {"Push", BfsStrategy::pushOnly},
        {"Switch(GAP)", BfsStrategy::gapSwitch},
        {"Switch(Aff)", BfsStrategy::affSwitch},
    };

    const ExecMode fig_modes[3] = {ExecMode::inCore, ExecMode::nearL3,
                                   ExecMode::affAlloc};
    std::vector<std::function<BfsResult()>> points;
    for (ExecMode mode : fig_modes) {
        for (const auto &[label, strat] : strategies) {
            const BfsStrategy s = strat;
            points.push_back([&p, mode, s] {
                return runBfs(RunConfig::forMode(mode), p, s);
            });
        }
    }
    const std::vector<BfsResult> runs = harness::runSweep(jobs, points);

    std::size_t at = 0;
    for (ExecMode mode : fig_modes) {
        std::printf("--- %s ---\n", execModeName(mode));
        for (const auto &[label, strat] : strategies) {
            const BfsResult &res = runs[at++];
            std::printf("%-12s %10llu cycles | ", label.c_str(),
                        (unsigned long long)res.run.cycles());
            Cycles prev = 0;
            for (const auto &it : res.iters) {
                const double share =
                    100.0 * double(it.endCycle - prev) /
                    double(res.run.cycles());
                std::printf("%c%.0f%% ", it.push ? 'P' : 'L', share);
                prev = it.endCycle;
            }
            std::printf("%s\n", res.run.valid ? "" : " INVALID");
        }
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper): In-Core pulls through the middle "
        "iterations; the NSC modes can\nafford pushing longer "
        "(cheap in-place atomics); Aff-Alloc pushes the most "
        "iterations.\nAt Table 3 scale the extended policy is "
        "fastest for Aff-Alloc, as in the paper\n(small graphs "
        "instead favour GAP switching everywhere; see "
        "EXPERIMENTS.md).\n");
    return 0;
}
