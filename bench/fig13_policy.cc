/**
 * @file
 * Reproduces Fig. 13: sensitivity of Aff-Alloc to the irregular
 * bank-selection policy (Eq. 4). Seven workloads run under Rnd, Lnr,
 * Min-Hop and Hybrid-H for H in {1,3,5,7}; speedup and traffic are
 * normalized to Rnd.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg,
                                "Fig. 13 - bank selection policies");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);

    struct Policy
    {
        std::string label;
        alloc::BankPolicy policy;
        double h;
    };
    const std::vector<Policy> policies = {
        {"Rnd", alloc::BankPolicy::random, 0},
        {"Lnr", alloc::BankPolicy::linear, 0},
        {"Min-Hop", alloc::BankPolicy::minHop, 0},
        {"Hybrid-1", alloc::BankPolicy::hybrid, 1},
        {"Hybrid-3", alloc::BankPolicy::hybrid, 3},
        {"Hybrid-5", alloc::BankPolicy::hybrid, 5},
        {"Hybrid-7", alloc::BankPolicy::hybrid, 7},
    };

    auto config_for = [&](const Policy &pol) {
        RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
        rc.allocOpts.policy = pol.policy;
        rc.allocOpts.hybridH = pol.h;
        return rc;
    };

    GraphParams gp;
    gp.graph = &g;
    gp.iters = quick ? 2 : 8;
    LinkListParams lp;
    HashJoinParams hp;
    BinTreeParams bp;
    if (quick) {
        lp.numLists = 256;
        lp.nodesPerList = 128;
        hp.buildRows = 32 * 1024;
        hp.probeRows = 64 * 1024;
        hp.numBuckets = 8 * 1024;
        bp.numNodes = 32 * 1024;
        bp.numLookups = 64 * 1024;
    }

    using Runner = std::function<RunResult(const RunConfig &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push",
         [&](const RunConfig &rc) { return runPageRankPush(rc, gp); }},
        {"pr_pull",
         [&](const RunConfig &rc) { return runPageRankPull(rc, gp); }},
        {"bfs",
         [&](const RunConfig &rc) {
             return runBfs(rc, gp, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [&](const RunConfig &rc) { return runSssp(rc, gp); }},
        {"link_list",
         [&](const RunConfig &rc) { return runLinkList(rc, lp); }},
        {"hash_join",
         [&](const RunConfig &rc) { return runHashJoin(rc, hp); }},
        {"bin_tree",
         [&](const RunConfig &rc) { return runBinTree(rc, bp); }},
    };

    std::vector<std::string> labels;
    for (const auto &p : policies)
        labels.push_back(p.label);
    harness::Comparison cmp(labels);

    // One sweep point per (workload, policy) pair.
    std::vector<std::function<RunResult()>> points;
    for (const auto &[name, runner] : workloads) {
        for (const auto &pol : policies) {
            points.push_back(
                [&config_for, &runner, &pol] {
                    return runner(config_for(pol));
                });
        }
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    std::size_t at = 0;
    for (const auto &[name, runner] : workloads) {
        std::vector<RunResult> runs(results.begin() + at,
                                    results.begin() + at +
                                        policies.size());
        at += policies.size();
        cmp.add(name, std::move(runs));
    }

    cmp.print("Fig. 13", /*speedup baseline=*/0, /*traffic baseline=*/0);
    std::printf(
        "Expected shape (paper): Rnd ~ Lnr (Lnr ~25%% better on "
        "link_list only); Min-Hop strong on most\nworkloads but "
        "pathological on bin_tree (single-bank pileup); Hybrid-5 best "
        "overall.\n");
    return 0;
}
