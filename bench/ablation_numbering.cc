/**
 * @file
 * Ablation of the bank numbering scheme (§4.1 "Other Interleave
 * Patterns"): the 1D pool interleave of Eq. 1 walks bank ids in
 * order, so renumbering banks changes the physical walk. Sweeps the
 * Fig. 4 vecadd offsets and two representative workloads under
 * row-major (paper default), snake (boustrophedon) and 2x2-block
 * numbering.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Ablation - bank numbering");

    const sim::BankNumbering schemes[] = {
        sim::BankNumbering::rowMajor, sim::BankNumbering::snake,
        sim::BankNumbering::block2};

    VecAddParams base;
    if (quick)
        base.n = 200'000;
    base.layout = VecAddLayout::heapLinear;

    // Sweep points per scheme: the In-Core baseline, 8 Delta-bank
    // runs, and the Lnr link_list chase — 30 points in total.
    std::vector<std::uint32_t> deltas;
    for (std::uint32_t delta = 4; delta < 64; delta += 8)
        deltas.push_back(delta);

    std::vector<std::function<RunResult()>> points;
    for (auto scheme : schemes) {
        points.push_back([base, scheme] {
            RunConfig rc = RunConfig::forMode(ExecMode::inCore);
            rc.machine.bankNumbering = scheme;
            return runVecAdd(rc, base);
        });
        for (std::uint32_t delta : deltas) {
            points.push_back([base, scheme, delta] {
                RunConfig rc = RunConfig::forMode(ExecMode::nearL3);
                rc.machine.bankNumbering = scheme;
                VecAddParams p = base;
                p.layout = VecAddLayout::poolDelta;
                p.deltaBank = delta;
                return runVecAdd(rc, p);
            });
        }
    }
    for (auto scheme : schemes) {
        points.push_back([quick, scheme] {
            RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
            rc.machine.bankNumbering = scheme;
            rc.allocOpts.policy = alloc::BankPolicy::linear;
            LinkListParams p;
            if (quick) {
                p.numLists = 256;
                p.nodesPerList = 128;
            }
            return runLinkList(rc, p);
        });
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    // Fig. 4-style offset sensitivity per numbering: worst-case and
    // average Near-L3 speedup across Delta in {4,...,60}.
    std::printf("vecadd Delta-bank sweep (Near-L3 speedup over "
                "In-Core):\n%-10s %8s %8s %8s\n", "scheme", "best",
                "worst", "mean");
    std::size_t at = 0;
    for (auto scheme : schemes) {
        const RunResult &incore = results[at++];
        double best = 0, worst = 1e30, sum = 0;
        int count = 0;
        for (std::size_t d = 0; d < deltas.size(); ++d) {
            const RunResult &r = results[at++];
            const double sp =
                double(incore.cycles()) / double(r.cycles());
            best = std::max(best, sp);
            worst = std::min(worst, sp);
            sum += sp;
            ++count;
        }
        std::printf("%-10s %8.2f %8.2f %8.2f\n",
                    sim::bankNumberingName(scheme), best, worst,
                    sum / count);
    }

    // Pointer chasing: linear allocation walks bank ids in order, so
    // snake numbering shortens Lnr-policy chases.
    std::printf("\nlink_list under the Lnr policy (cycles / hops):\n");
    for (auto scheme : schemes) {
        const RunResult &r = results[at++];
        std::printf("  %-10s %10llu cycles %12llu hops%s\n",
                    sim::bankNumberingName(scheme),
                    (unsigned long long)r.cycles(),
                    (unsigned long long)r.hops(),
                    r.valid ? "" : " INVALID");
    }
    std::printf("\nExpected shape: snake numbering removes the "
                "row-wrap jump of consecutive banks, helping\n"
                "sequential walks (Lnr chases); aligned affine "
                "layouts are numbering-invariant.\n");
    return 0;
}
