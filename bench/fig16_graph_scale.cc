/**
 * @file
 * Reproduces Fig. 16: speedup of the linked-CSR graph workloads on
 * larger graphs (|V| = 2^17 .. 2^20, constant average degree) for
 * Near-L3, Min-Hops and Hybrid-5, normalized to Near-L3, with the
 * Aff-Alloc L3 miss rate.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 16 - graph input scale");

    const std::uint32_t base_scale = quick ? 12 : 17;

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    std::printf("%-8s %10s | %9s %9s | %10s\n", "wl", "|V|",
                "Min-Hops", "Hybrid-5", "L3miss(H5)");
    for (std::uint32_t scale = base_scale; scale < base_scale + 4;
         ++scale) {
        std::vector<double> geo_min, geo_hyb;
        graph::KroneckerParams kp;
        kp.scale = scale;
        kp.edgeFactor = 16; // constant average degree while scaling
        const auto g = graph::kronecker(kp);
        GraphParams p;
        p.graph = &g;
        p.iters = quick ? 2 : 8;

        // Sweep the 9 runs of this scale; the graph of the next scale
        // is only generated after they finish, bounding peak memory.
        std::vector<std::function<RunResult()>> points;
        for (const auto &[name, runner] : workloads) {
            points.push_back([&runner, &p] {
                return runner(RunConfig::forMode(ExecMode::nearL3), p);
            });
            points.push_back([&runner, &p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::minHop;
                return runner(rc, p);
            });
            points.push_back([&runner, &p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::hybrid;
                rc.allocOpts.hybridH = 5;
                return runner(rc, p);
            });
        }
        const std::vector<RunResult> results =
            harness::runSweep(jobs, points);

        std::size_t at = 0;
        for (const auto &[name, runner] : workloads) {
            const RunResult &nl3 = results[at++];
            const RunResult &aff_min = results[at++];
            const RunResult &aff_hyb = results[at++];

            const double sp_min =
                double(nl3.cycles()) / double(aff_min.cycles());
            const double sp_hyb =
                double(nl3.cycles()) / double(aff_hyb.cycles());
            geo_min.push_back(sp_min);
            geo_hyb.push_back(sp_hyb);
            std::printf("%-8s %10llu | %9.2f %9.2f | %9.1f%%%s\n",
                        name.c_str(),
                        (unsigned long long)g.numVertices, sp_min,
                        sp_hyb, 100.0 * aff_hyb.l3MissRate,
                        nl3.valid && aff_min.valid && aff_hyb.valid
                            ? ""
                            : "  INVALID");
        }
        std::printf("%-8s %10s | %9.2f %9.2f |\n\n", "geomean", "",
                    sim::geomean(geo_min), sim::geomean(geo_hyb));
    }
    std::printf("Expected shape (paper): benefit persists longer than "
                "for affine workloads (vertex reuse keeps\nthe miss "
                "rate < 20%%), degrading gently as the graph outgrows "
                "the L3.\n");
    return 0;
}
