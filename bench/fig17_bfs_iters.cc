/**
 * @file
 * Reproduces Fig. 17: per-iteration BFS characteristics on the
 * Kronecker graph — visited nodes, active nodes and scout edges per
 * iteration, normalized to total vertices / edges.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    // A single run: --jobs is accepted for harness uniformity (the
    // sweep degenerates to inline execution).
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    const harness::BenchObs obs = harness::BenchObs::parse(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg,
                                "Fig. 17 - BFS iteration characteristics");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;

    // Direction choices do not change the traversal set; use push so
    // every iteration's scout edges are meaningful.
    const std::vector<std::function<BfsResult()>> points = {[&p, &obs] {
        RunConfig rc = RunConfig::forMode(ExecMode::nearL3);
        obs.apply(rc, "bfs", "push");
        return runBfs(rc, p, BfsStrategy::pushOnly);
    }};
    const BfsResult res = harness::runSweep(jobs, points)[0];

    std::printf("graph: %u vertices, %llu edges; valid=%s\n\n",
                g.numVertices, (unsigned long long)g.numEdges(),
                res.run.valid ? "yes" : "NO");
    std::printf("%5s %14s %14s %14s\n", "iter", "visited", "active",
                "scout edges");
    for (std::size_t i = 0; i < res.iters.size(); ++i) {
        const auto &it = res.iters[i];
        std::printf("%5zu %13.3f%% %13.3f%% %13.3f%%\n", i,
                    100.0 * double(it.visited) / g.numVertices,
                    100.0 * double(it.active) / g.numVertices,
                    100.0 * double(it.scoutEdges) / double(g.numEdges()));
    }
    std::printf("\nExpected shape (paper): active nodes and scout edges "
                "peak in the middle iterations\n(iters 2-3), with "
                "visited saturating shortly after.\n");
    obs.reportRun(res.run, "bfs", "push");
    return 0;
}
