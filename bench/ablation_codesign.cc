/**
 * @file
 * Ablation of the data-structure co-design (§5.3, Insight III):
 * starting from plain Near-L3 and adding the Aff-Alloc ingredients
 * one at a time —
 *
 *   1. Near-L3 baseline (oblivious CSR, global queue)
 *   2. + partitioned/aligned vertex properties (affine API only)
 *   3. + Linked CSR edge placement (irregular API)
 *   4. + spatially distributed frontier queue (full co-design)
 *
 * and a node-size sweep of the Linked CSR (§5.3's capacity/pointer
 * overhead tradeoff).
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg,
                                "Ablation - data structure co-design");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);

    struct Step
    {
        std::string label;
        ExecMode mode;
        EdgeLayout layout;
        bool spatial_queue;
    };
    const std::vector<Step> steps = {
        {"Near-L3", ExecMode::nearL3, EdgeLayout::csr, false},
        {"+aligned props", ExecMode::affAlloc, EdgeLayout::csr, false},
        {"+linked CSR", ExecMode::affAlloc, EdgeLayout::linked, false},
        {"+spatial queue", ExecMode::affAlloc, EdgeLayout::linked, true},
    };

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    std::vector<std::string> labels;
    for (const auto &s : steps)
        labels.push_back(s.label);
    harness::Comparison cmp(labels);

    // Sweep points: (workload, step) plus the two node-size runs, all
    // independent; printed in order afterwards.
    const std::uint32_t node_sizes[2] = {64u, 128u};
    std::vector<std::function<RunResult()>> points;
    for (const auto &[name, runner] : workloads) {
        for (const auto &s : steps) {
            points.push_back([&g, quick, &s, &runner] {
                GraphParams p;
                p.graph = &g;
                p.iters = quick ? 2 : 8;
                p.layout = s.layout;
                p.useSpatialQueue = s.spatial_queue;
                return runner(RunConfig::forMode(s.mode), p);
            });
        }
    }
    for (std::uint32_t node_bytes : node_sizes) {
        points.push_back([&g, quick, node_bytes] {
            GraphParams p;
            p.graph = &g;
            p.iters = quick ? 2 : 8;
            p.nodeBytes = node_bytes;
            return runPageRankPush(RunConfig::forMode(ExecMode::affAlloc),
                                   p);
        });
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    std::size_t at = 0;
    for (const auto &[name, runner] : workloads) {
        std::vector<RunResult> runs(results.begin() + at,
                                    results.begin() + at +
                                        steps.size());
        at += steps.size();
        cmp.add(name, std::move(runs));
    }
    cmp.print("Co-design ablation", 0, 0);

    // ------------------------- Linked CSR node size sweep (§5.3)
    std::printf("Linked CSR node size sweep (pr_push, Aff-Alloc, "
                "speedup vs 64B nodes):\n");
    const RunResult &base = results[at];
    for (std::uint32_t node_bytes : node_sizes) {
        const RunResult &r = results[at++];
        std::printf("  %4uB nodes (%2u edges each): %8llu cycles "
                    "(%.2fx), %10llu hops%s\n",
                    node_bytes,
                    std::min((node_bytes - 8) / 4, 31u),
                    (unsigned long long)r.cycles(),
                    double(base.cycles()) / double(r.cycles()),
                    (unsigned long long)r.hops(),
                    r.valid ? "" : " INVALID");
    }
    std::printf("\nLarger nodes amortize pointer overhead but bind "
                "more edges to one placement decision,\nso per-edge "
                "affinity quality drops — the paper's 64 B default "
                "balances the two.\n");
    return 0;
}
