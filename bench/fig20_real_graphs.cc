/**
 * @file
 * Reproduces Fig. 20 + Table 4: performance on real-world social
 * graphs. The public datasets cannot ship with the repo, so synthetic
 * stand-ins matched to the published |V| / |E| / degree skew are used
 * (DESIGN.md substitution table). Near-L3 vs Min-Hops vs Hybrid-5 on
 * pr_push / bfs / sssp, normalized to Near-L3.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 20 - real-world graphs");

    struct Input
    {
        std::string name;
        graph::Csr g;
    };
    std::vector<Input> inputs;
    if (quick) {
        inputs.push_back(
            {"twitch-like(small)",
             graph::powerLaw(42000, 1700000, 2.2, 1, true, true)});
        inputs.push_back(
            {"gplus-like(small)",
             graph::powerLaw(27000, 1710000, 2.05, 2, true, true)});
    } else {
        inputs.push_back({"twitch-gamers*", graph::twitchLike()});
        inputs.push_back({"gplus*", graph::gplusLike()});
    }

    std::printf("Table 4 (synthetic stand-ins marked *):\n"
                "%-18s %10s %12s %8s\n", "input", "|Vertex|", "|Edge|",
                "avg deg");
    for (const auto &in : inputs) {
        std::printf("%-18s %10u %12llu %8.0f\n", in.name.c_str(),
                    in.g.numVertices,
                    (unsigned long long)in.g.numEdges(),
                    in.g.averageDegree());
    }
    std::printf("\n");

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    harness::Comparison cmp({"Near-L3", "Min-Hops", "Hybrid-5"});
    for (const auto &in : inputs) {
        GraphParams p;
        p.graph = &in.g;
        p.iters = quick ? 2 : 8;
        for (const auto &[name, runner] : workloads) {
            std::vector<RunResult> runs;
            runs.push_back(
                runner(RunConfig::forMode(ExecMode::nearL3), p));
            RunConfig rc_min = RunConfig::forMode(ExecMode::affAlloc);
            rc_min.allocOpts.policy = alloc::BankPolicy::minHop;
            runs.push_back(runner(rc_min, p));
            RunConfig rc_hyb = RunConfig::forMode(ExecMode::affAlloc);
            rc_hyb.allocOpts.policy = alloc::BankPolicy::hybrid;
            rc_hyb.allocOpts.hybridH = 5;
            runs.push_back(runner(rc_hyb, p));
            cmp.add(in.name + "/" + name, std::move(runs));
        }
    }
    cmp.print("Fig. 20", /*speedup baseline=*/0, /*traffic baseline=*/0);
    std::printf("Expected shape (paper): Hybrid-5 ~2.0x over Near-L3 "
                "on these hard-to-partition,\nhigh-degree power-law "
                "graphs.\n");
    return 0;
}
