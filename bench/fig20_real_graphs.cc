/**
 * @file
 * Reproduces Fig. 20 + Table 4: performance on real-world social
 * graphs. The public datasets cannot ship with the repo, so synthetic
 * stand-ins matched to the published |V| / |E| / degree skew are used
 * (DESIGN.md substitution table). Near-L3 vs Min-Hops vs Hybrid-5 on
 * pr_push / bfs / sssp, normalized to Near-L3.
 */

#include <cstdio>
#include <functional>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg, "Fig. 20 - real-world graphs");

    struct Input
    {
        std::string name;
        graph::Csr g;
    };
    std::vector<Input> inputs;
    if (quick) {
        inputs.push_back(
            {"twitch-like(small)",
             graph::powerLaw(42000, 1700000, 2.2, 1, true, true)});
        inputs.push_back(
            {"gplus-like(small)",
             graph::powerLaw(27000, 1710000, 2.05, 2, true, true)});
    } else {
        inputs.push_back({"twitch-gamers*", graph::twitchLike()});
        inputs.push_back({"gplus*", graph::gplusLike()});
    }

    std::printf("Table 4 (synthetic stand-ins marked *):\n"
                "%-18s %10s %12s %8s\n", "input", "|Vertex|", "|Edge|",
                "avg deg");
    for (const auto &in : inputs) {
        std::printf("%-18s %10u %12llu %8.0f\n", in.name.c_str(),
                    in.g.numVertices,
                    (unsigned long long)in.g.numEdges(),
                    in.g.averageDegree());
    }
    std::printf("\n");

    using Runner = std::function<RunResult(const RunConfig &,
                                           const GraphParams &)>;
    const std::vector<std::pair<std::string, Runner>> workloads = {
        {"pr_push", [](const RunConfig &rc, const GraphParams &p) {
             return runPageRankPush(rc, p);
         }},
        {"bfs", [](const RunConfig &rc, const GraphParams &p) {
             return runBfs(rc, p, defaultBfsStrategy(rc.mode)).run;
         }},
        {"sssp", [](const RunConfig &rc, const GraphParams &p) {
             return runSssp(rc, p);
         }},
    };

    harness::Comparison cmp({"Near-L3", "Min-Hops", "Hybrid-5"});
    std::vector<std::function<RunResult()>> points;
    for (const auto &in : inputs) {
        for (const auto &[name, runner] : workloads) {
            GraphParams p;
            p.graph = &in.g;
            p.iters = quick ? 2 : 8;
            points.push_back([runner, p] {
                return runner(RunConfig::forMode(ExecMode::nearL3), p);
            });
            points.push_back([runner, p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::minHop;
                return runner(rc, p);
            });
            points.push_back([runner, p] {
                RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
                rc.allocOpts.policy = alloc::BankPolicy::hybrid;
                rc.allocOpts.hybridH = 5;
                return runner(rc, p);
            });
        }
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    std::size_t at = 0;
    for (const auto &in : inputs) {
        for (const auto &[name, runner] : workloads) {
            cmp.add(in.name + "/" + name,
                    {results[at], results[at + 1], results[at + 2]});
            at += 3;
        }
    }
    cmp.print("Fig. 20", /*speedup baseline=*/0, /*traffic baseline=*/0);
    std::printf("Expected shape (paper): Hybrid-5 ~2.0x over Near-L3 "
                "on these hard-to-partition,\nhigh-degree power-law "
                "graphs.\n");
    return 0;
}
