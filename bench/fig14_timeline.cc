/**
 * @file
 * Reproduces Fig. 14: the distribution of atomic-stream occupancy
 * across L3 banks over the run of push-based BFS, under Rnd, Min-Hop
 * and Hybrid-5. For each configuration the timeline is resampled to
 * 20 buckets of normalized execution time and the min / 25% / mean /
 * 75% / max bands over banks are printed (the figure's five lines).
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "graph/generators.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(
        cfg, "Fig. 14 - atomic stream distribution in bfs_push");

    graph::KroneckerParams kp;
    kp.scale = quick ? 13 : 17;
    kp.edgeFactor = 16;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;

    struct Config
    {
        std::string label;
        alloc::BankPolicy policy;
        double h;
    };
    const std::vector<Config> configs = {
        {"Rnd", alloc::BankPolicy::random, 0},
        {"Min-Hops", alloc::BankPolicy::minHop, 0},
        {"Hybrid-5", alloc::BankPolicy::hybrid, 5},
    };

    std::vector<std::function<BfsResult()>> points;
    for (const auto &c : configs) {
        points.push_back([&c, &p] {
            RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
            rc.allocOpts.policy = c.policy;
            rc.allocOpts.hybridH = c.h;
            return runBfs(rc, p, BfsStrategy::pushOnly);
        });
    }
    const std::vector<BfsResult> runs = harness::runSweep(jobs, points);

    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        const auto &c = configs[ci];
        const BfsResult &res = runs[ci];

        // Keep only epochs that performed atomic work (the push
        // passes), then resample into 20 normalized-time buckets.
        std::vector<const sim::EpochRecord *> active;
        for (const auto &rec : res.run.timeline.records()) {
            std::uint64_t total = 0;
            for (auto a : rec.atomicStreamsPerBank)
                total += a;
            if (total > 0)
                active.push_back(&rec);
        }
        std::printf("--- %s (total %llu cycles, %zu active epochs, "
                    "valid=%s) ---\n",
                    c.label.c_str(),
                    (unsigned long long)res.run.cycles(), active.size(),
                    res.run.valid ? "yes" : "NO");
        std::printf("%6s %10s %10s %10s %10s %10s\n", "time", "min",
                    "25%", "avg", "75%", "max");
        const std::size_t buckets =
            std::min<std::size_t>(20, active.size());
        for (std::size_t b = 0; b < buckets; ++b) {
            // Aggregate the records of this bucket bank-wise.
            const std::size_t lo = b * active.size() / buckets;
            const std::size_t hi =
                (b + 1) * active.size() / buckets;
            sim::EpochRecord agg;
            agg.atomicStreamsPerBank.assign(cfg.numBanks(), 0);
            for (std::size_t i = lo; i < hi && i < active.size(); ++i) {
                for (std::uint32_t bank = 0; bank < cfg.numBanks();
                     ++bank) {
                    agg.atomicStreamsPerBank[bank] +=
                        active[i]->atomicStreamsPerBank[bank];
                }
            }
            const auto bands = sim::Timeline::bands(agg);
            std::printf("%6.2f %10.0f %10.0f %10.1f %10.0f %10.0f\n",
                        double(b) / buckets, bands[0], bands[1],
                        bands[2], bands[3], bands[4]);
        }
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper): Min-Hops shows the widest max/min "
        "spread (poor balance);\nHybrid-5 lifts the 25%% line (better "
        "balance); Rnd keeps streams occupied longest.\n");
    return 0;
}
