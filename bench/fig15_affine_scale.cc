/**
 * @file
 * Reproduces Fig. 15: speedup of the affine workloads and their L3
 * miss rate as the input scales 1x / 2x / 4x / 8x. The benefit of
 * near-cache affinity drops once the working set no longer fits in
 * the 64 MB L3.
 */

#include <cstdio>
#include <functional>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    sim::MachineConfig cfg;
    harness::printMachineBanner(cfg,
                                "Fig. 15 - affine workloads, input scale");

    struct Entry
    {
        std::string name;
        // run(scale, mode) -> result
        std::function<RunResult(int, ExecMode)> run;
    };

    const double shrink = quick ? 0.25 : 1.0;
    std::vector<Entry> entries;
    entries.push_back({"pathfinder", [&](int s, ExecMode m) {
                           PathfinderParams p;
                           p.cols = std::uint64_t(1'500'000 * shrink) * s;
                           p.iters = quick ? 4 : 8;
                           return runPathfinder(RunConfig::forMode(m), p);
                       }});
    entries.push_back({"hotspot", [&](int s, ExecMode m) {
                           HotspotParams p;
                           p.rows = std::uint64_t(2048 * shrink) * s;
                           p.iters = quick ? 4 : 8;
                           return runHotspot(RunConfig::forMode(m), p);
                       }});
    entries.push_back({"srad", [&](int s, ExecMode m) {
                           SradParams p;
                           p.rows = std::uint64_t(1024 * shrink) * s;
                           p.iters = quick ? 4 : 8;
                           return runSrad(RunConfig::forMode(m), p);
                       }});
    entries.push_back({"hotspot3D", [&](int s, ExecMode m) {
                           Hotspot3dParams p;
                           p.nz = std::uint64_t(8 * shrink * s);
                           p.iters = quick ? 4 : 8;
                           return runHotspot3d(RunConfig::forMode(m), p);
                       }});

    // Sweep points: (scale, entry) x {Near-L3, Aff-Alloc}, results
    // collected in sweep order and printed afterwards.
    const int scales[4] = {1, 2, 4, 8};
    std::vector<std::function<RunResult()>> points;
    for (int scale : scales) {
        for (const auto &e : entries) {
            points.push_back(
                [&e, scale] { return e.run(scale, ExecMode::nearL3); });
            points.push_back(
                [&e, scale] { return e.run(scale, ExecMode::affAlloc); });
        }
    }
    const std::vector<RunResult> results =
        harness::runSweep(jobs, points);

    std::printf("%-12s %6s | %18s | %10s %10s\n", "workload", "scale",
                "speedup Aff/NearL3", "L3miss Aff", "L3miss NL3");
    std::vector<double> geo_per_scale[4];
    int si = 0;
    std::size_t at = 0;
    for (int scale : scales) {
        for (const auto &e : entries) {
            const RunResult &nl3 = results[at++];
            const RunResult &aff = results[at++];
            const double sp =
                double(nl3.cycles()) / double(aff.cycles());
            std::printf("%-12s %5dx | %18.2f | %9.1f%% %9.1f%%%s\n",
                        e.name.c_str(), scale, sp,
                        100.0 * aff.l3MissRate, 100.0 * nl3.l3MissRate,
                        aff.valid && nl3.valid ? "" : "  INVALID");
            geo_per_scale[si].push_back(sp);
        }
        std::printf("%-12s %5dx | %18.2f |\n", "geomean", scale,
                    sim::geomean(geo_per_scale[si]));
        ++si;
    }
    std::printf("\nExpected shape (paper): speedup shrinks with input "
                "scale as the L3 miss rate climbs\n(>75%% misses at 8x "
                "-> benefit largely gone).\n");
    return 0;
}
