/**
 * @file
 * Host & I/O interference sweep: NDC tenants co-run with non-offload
 * traffic classes — host-core agents issuing ordinary cacheline
 * streams through the TLB/cache/NoC/DRAM path, and DMA/NIC-style I/O
 * injectors whose writes allocate straight into L3 (DDIO-like) and
 * evict tenant lines. The sweep crosses interference intensity with
 * the LLC I/O-management policy ablation (unrestricted DDIO vs.
 * way-restricted allocation vs. bypass-to-DRAM) and with per-class
 * bandwidth partitioning, each under baseline static-NUCA placement
 * (Near-L3) and affinity allocation (Aff-Alloc). The headline check
 * is that Aff-Alloc keeps a foreground-makespan edge over Near-L3
 * while the machine is being trampled by host and I/O traffic.
 *
 * Flags: --quick --jobs N --simcheck [--simcheck-digest]
 *        --qos-csv PREFIX (per-co-run QoS CSVs, with class column)
 *        --csv PATH (per-tenant comparison CSV across configs)
 *        --sched rr|weighted --quantum N
 *        --trace-out PREFIX --heatmap banks (per-agent overlays)
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "harness/trace.hh"
#include "obs/heatmap.hh"
#include "sim/simcheck.hh"
#include "tenant/qos.hh"
#include "tenant/scheduler.hh"
#include "traffic/traffic.hh"

using namespace affalloc;
using namespace affalloc::tenant;

namespace
{

/** One sweep point: an interference level under an LLC/arb config. */
struct Point
{
    std::string label; // e.g. "hostio-way2"
    traffic::TrafficConfig traffic;
    sim::LlcIoPolicy llcPolicy = sim::LlcIoPolicy::ddio;
    std::uint32_t llcIoWays = 2;
    sim::ClassArbConfig arb;
    ExecMode mode = ExecMode::affAlloc;
};

/** Makespan over the NDC tenants only — the metric the paper's user
 *  cares about; background agents drain slightly later by design. */
Cycles
foregroundMakespan(const CorunReport &r)
{
    Cycles m = 0;
    for (const TenantResult &t : r.tenants)
        if (t.cls == AgentClass::ndc)
            m = std::max(m, t.finishCycle);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    const harness::BenchSimCheck simcheckOpts =
        harness::BenchSimCheck::parse(argc, argv);
    const harness::BenchObs obsOpts = harness::BenchObs::parse(argc, argv);
    const harness::BenchCorun corunOpts =
        harness::BenchCorun::parse(argc, argv);
    const SchedPolicy policy = parseSchedPolicy(corunOpts.sched);
    // Interference needs fine-grained interleaving: with the harness
    // default of 8 epochs per quantum, a --quick foreground finishes
    // inside its first grant and the background agents never run.
    // Default to single-epoch quanta unless the user chose a value.
    bool quantumSet = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--quantum", 0) == 0)
            quantumSet = true;
    const std::uint32_t quantum = quantumSet ? corunOpts.quantumEpochs : 1;

    sim::MachineConfig cfg;
    simcheckOpts.apply(cfg);
    harness::printMachineBanner(cfg, "Host & I/O interference");
    std::printf("Scheduler: %s, quantum %u epochs%s\n\n",
                schedPolicyName(policy), quantum,
                quick ? " (REDUCED: --quick)" : "");

    // An affine+graph foreground pair: bulk structures placed up
    // front, so the affinity edge survives epoch-interleaved co-runs,
    // while the irregular BFS side stays sensitive to L3 eviction
    // (I/O allocation) and bank queueing (host load).
    const std::vector<std::string> fgMix = {"hotspot", "bfs"};

    traffic::TrafficConfig none;
    traffic::TrafficConfig hostio;
    hostio.hostAgents = 2;
    hostio.ioStreams = 2;

    sim::ClassArbConfig noArb;
    sim::ClassArbConfig part;
    part.mode = sim::ClassArbMode::partition;
    part.share[int(AgentClass::ndc)] = 2.0;
    part.share[int(AgentClass::host)] = 1.0;
    part.share[int(AgentClass::io)] = 1.0;

    struct Level
    {
        const char *label;
        traffic::TrafficConfig traffic;
        sim::LlcIoPolicy llc;
        std::uint32_t ways;
        sim::ClassArbConfig arb;
    };
    const std::vector<Level> levels = {
        {"none", none, sim::LlcIoPolicy::ddio, 2, noArb},
        {"hostio-ddio", hostio, sim::LlcIoPolicy::ddio, 2, noArb},
        {"hostio-way2", hostio, sim::LlcIoPolicy::wayRestrict, 2, noArb},
        {"hostio-bypass", hostio, sim::LlcIoPolicy::bypass, 2, noArb},
        {"hostio-part", hostio, sim::LlcIoPolicy::ddio, 2, part},
    };
    const ExecMode modes[2] = {ExecMode::nearL3, ExecMode::affAlloc};

    std::vector<Point> points;
    for (const Level &lv : levels) {
        for (const ExecMode mode : modes) {
            Point pt;
            pt.label = lv.label;
            pt.traffic = lv.traffic;
            pt.llcPolicy = lv.llc;
            pt.llcIoWays = lv.ways;
            pt.arb = lv.arb;
            pt.mode = mode;
            points.push_back(std::move(pt));
        }
    }

    std::vector<std::function<CorunReport()>> tasks;
    for (const Point &pt : points) {
        tasks.push_back([&pt, &fgMix, &cfg, &obsOpts, policy, quantum,
                         quick] {
            CorunOptions opts;
            opts.machine = cfg;
            opts.machine.llcIoPolicy = pt.llcPolicy;
            opts.machine.llcIoWays = pt.llcIoWays;
            opts.machine.classArb = pt.arb;
            opts.mode = pt.mode;
            opts.policy = policy;
            opts.quantumEpochs = quantum;
            opts.quick = quick;
            if (!obsOpts.tracePrefix.empty()) {
                opts.obs.tracePath = harness::BenchObs::runFile(
                    obsOpts.tracePrefix, pt.label,
                    execModeName(pt.mode), ".json");
            }
            opts.obs.metrics = !obsOpts.heatmap.empty();
            std::vector<TenantSpec> specs;
            for (const std::string &w : fgMix)
                specs.push_back({.workload = w, .weight = 1});
            for (TenantSpec &s :
                 traffic::makeBackgroundSpecs(pt.traffic))
                specs.push_back(std::move(s));
            return runCorun(specs, opts);
        });
    }
    const std::vector<CorunReport> reports =
        harness::runSweep(jobs, tasks);

    // Near-L3 and Aff-Alloc alternate per level; compare pairs on the
    // foreground makespan (the background drains by design later).
    std::printf("%-14s %6s | %14s %14s | %8s | %7s %7s\n", "level",
                "mode", "fg_makespan", "vs near", "speedup", "stp",
                "fair");
    bool allValid = true;
    bool affWinsUnderLoad = false;
    for (std::size_t i = 0; i + 1 < reports.size(); i += 2) {
        const Point &pt = points[i + 1];
        const CorunReport &near = reports[i];
        const CorunReport &aff = reports[i + 1];
        const Cycles nearFg = foregroundMakespan(near);
        const Cycles affFg = foregroundMakespan(aff);
        const double speedup = static_cast<double>(nearFg) /
                               static_cast<double>(affFg ? affFg : 1);
        if (pt.traffic.any() && affFg < nearFg)
            affWinsUnderLoad = true;
        allValid = allValid && near.allValid && aff.allValid;
        std::printf("%-14s %6s | %14llu %14llu | %7.2fx | %7.3f "
                    "%7.3f\n",
                    pt.label.c_str(), "aff",
                    (unsigned long long)affFg,
                    (unsigned long long)nearFg, speedup,
                    aff.weightedSpeedup, aff.fairness);
    }
    std::printf("\n");

    if (!corunOpts.comparisonCsv.empty()) {
        // Per-tenant rows across the two configs; the trailing class
        // column separates NDC tenants from host/io agents.
        harness::Comparison cmp({execModeName(ExecMode::nearL3),
                                 execModeName(ExecMode::affAlloc)});
        for (std::size_t i = 0; i + 1 < reports.size(); i += 2) {
            const Point &pt = points[i];
            const CorunReport &near = reports[i];
            const CorunReport &aff = reports[i + 1];
            for (std::size_t t = 0; t < near.tenants.size(); ++t)
                cmp.add(pt.label + ":" + near.tenants[t].name,
                        {near.tenants[t].run, aff.tenants[t].run});
        }
        harness::writeComparisonCsv(
            cmp, {execModeName(ExecMode::nearL3),
                  execModeName(ExecMode::affAlloc)},
            corunOpts.comparisonCsv);
        std::printf("Per-tenant comparison csv written to %s\n\n",
                    corunOpts.comparisonCsv.c_str());
    }

    for (std::size_t i = 0; i < reports.size(); ++i) {
        const Point &pt = points[i];
        const std::string config = std::string(execModeName(pt.mode)) +
                                   "/" + pt.label;
        printCorunReport(reports[i]);
        if (!corunOpts.qosPrefix.empty()) {
            const std::string path = harness::BenchObs::runFile(
                corunOpts.qosPrefix, pt.label, execModeName(pt.mode),
                ".csv");
            writeQosCsv(path, reports[i], config);
            std::printf("  QoS csv written to %s\n", path.c_str());
        }
        if (obsOpts.heatmap == "banks" &&
            !reports[i].obsSnapshot.tenantBankAccesses.empty()) {
            std::fputs(
                obs::renderTenantBankHeatmaps(reports[i].obsSnapshot)
                    .c_str(),
                stdout);
        }
        std::printf("\n");
    }

    if (simcheckOpts.digest) {
        std::uint64_t overall = 0;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            const std::uint64_t d = reports[i].digest();
            overall = overall * 0x100000001b3ULL + d;
            std::printf("digest %s %s %s\n", points[i].label.c_str(),
                        execModeName(points[i].mode),
                        simcheck::digestToString(d).c_str());
        }
        std::printf("digest overall - %s\n",
                    simcheck::digestToString(overall).c_str());
    }

    std::printf("Aff-Alloc vs static-NUCA under host+I/O load: %s; "
                "%s\n",
                affWinsUnderLoad
                    ? "wins at >= 1 interference point"
                    : "NO WIN under load (regression)",
                allValid ? "all runs validated"
                         : "VALIDATION FAILURES (see above)");
    return allValid && affWinsUnderLoad ? 0 : 1;
}
