/**
 * @file
 * Open-system serving availability sweep: requests arrive online on a
 * seeded Poisson schedule, pass admission control into recycled
 * tenant slots, and run on the shared machine while a mid-flight
 * fault campaign kills banks and degrades links. For each arrival
 * rate x campaign x {Near-L3, Aff-Alloc} point the report gives
 * per-class tail latency (p50/p99/p999 slowdown vs the unloaded
 * service time), goodput, shed/timeout/retry counts and availability;
 * a third arm re-runs the bank-kill campaign with re-affinity
 * recovery disabled to isolate what the recovery path buys.
 *
 * Flags: --quick --jobs N --simcheck [--simcheck-digest]
 *        --csv PATH (availability CSV across all sweep points)
 *        --sched rr|weighted --quantum N --trace-out PREFIX
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "serve/serve.hh"
#include "sim/simcheck.hh"

using namespace affalloc;
using namespace affalloc::serve;

namespace
{

/** One sweep point: an arrival rate under a campaign and a mode. */
struct Point
{
    std::string label;  // e.g. "rate8/bankkill"
    std::string config; // e.g. "affAlloc" or "affAlloc-norec"
    double rate = 2.0;
    ExecMode mode = ExecMode::affAlloc;
    std::vector<sim::TimedFault> campaign;
    bool reaffinity = true;
};

/** The mid-flight drill: two bank kills plus one link degrade. */
std::vector<sim::TimedFault>
bankKillCampaign()
{
    sim::TimedFault k1, k2, dl;
    k1.kind = sim::FaultKind::killBank;
    k1.target = 9;
    k1.atCycle = 500'000;
    dl.kind = sim::FaultKind::degradeLink;
    dl.target = 4 * 4 + 0; // tile 4 east
    dl.atCycle = 750'000;
    dl.factor = 4;
    k2.kind = sim::FaultKind::killBank;
    k2.target = 10;
    k2.atCycle = 1'000'000;
    return {k1, dl, k2};
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    const harness::BenchSimCheck simcheckOpts =
        harness::BenchSimCheck::parse(argc, argv);
    const harness::BenchObs obsOpts = harness::BenchObs::parse(argc, argv);
    const harness::BenchCorun corunOpts =
        harness::BenchCorun::parse(argc, argv);
    const tenant::SchedPolicy policy =
        tenant::parseSchedPolicy(corunOpts.sched);

    sim::MachineConfig cfg;
    simcheckOpts.apply(cfg);
    harness::printMachineBanner(cfg, "Open-system serving availability");
    std::printf("Scheduler: %s, quantum %u epochs%s\n\n",
                tenant::schedPolicyName(policy), corunOpts.quantumEpochs,
                quick ? " (REDUCED: --quick)" : "");

    const std::vector<double> rates = {2.0, 8.0, 32.0};
    const ExecMode modes[2] = {ExecMode::nearL3, ExecMode::affAlloc};

    std::vector<Point> points;
    for (const double rate : rates) {
        const std::string rl = "rate" + std::to_string(int(rate));
        for (const char *campaign : {"healthy", "bankkill"}) {
            for (const ExecMode mode : modes) {
                Point pt;
                pt.label = rl + "/" + campaign;
                pt.config = execModeName(mode);
                pt.rate = rate;
                pt.mode = mode;
                if (std::string(campaign) == "bankkill")
                    pt.campaign = bankKillCampaign();
                points.push_back(std::move(pt));
            }
        }
        // Recovery-off contrast arm: same campaign, spares stay on
        // the default next-in-order banks.
        Point pt;
        pt.label = rl + "/bankkill";
        pt.config = std::string(execModeName(ExecMode::affAlloc)) +
                    "-norec";
        pt.rate = rate;
        pt.mode = ExecMode::affAlloc;
        pt.campaign = bankKillCampaign();
        pt.reaffinity = false;
        points.push_back(std::move(pt));
    }

    std::vector<std::function<ServeReport()>> tasks;
    for (const Point &pt : points) {
        tasks.push_back([&pt, &cfg, &obsOpts, &corunOpts, policy,
                         quick] {
            ServeOptions opts;
            opts.machine = cfg;
            opts.mode = pt.mode;
            opts.policy = policy;
            opts.quantumEpochs = corunOpts.quantumEpochs;
            opts.quick = quick;
            opts.numRequests = quick ? 24 : 48;
            opts.arrivalsPerMcycle = pt.rate;
            opts.faultSchedule = pt.campaign;
            opts.reaffinity = pt.reaffinity;
            if (!obsOpts.tracePrefix.empty()) {
                opts.obs.tracePath = harness::BenchObs::runFile(
                    obsOpts.tracePrefix,
                    pt.label.substr(0, pt.label.find('/')),
                    pt.config, ".json");
            }
            return runServe(opts);
        });
    }
    const std::vector<ServeReport> reports =
        harness::runSweep(jobs, tasks);

    std::printf("%-14s %-14s | %5s %4s %4s | %6s | %9s %9s | %8s\n",
                "point", "config", "ok", "shed", "tmo", "avail",
                "p99 slow", "goodput", "reaff");
    bool allValid = true;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const Point &pt = points[i];
        const ServeReport &r = reports[i];
        allValid = allValid && r.allValid;
        std::printf("%-14s %-14s | %5u %4u %4u | %5.1f%% | %8.2fx "
                    "%9.3f | %8u\n",
                    pt.label.c_str(), pt.config.c_str(), r.completed,
                    r.shed, r.timedOut, 100.0 * r.availability,
                    r.worstP99Slowdown, r.goodputPerMcycle,
                    r.reaffinityMoves);
    }
    std::printf("\n");

    for (std::size_t i = 0; i < reports.size(); ++i) {
        printServeReport(reports[i],
                         points[i].label + "/" + points[i].config);
        std::printf("\n");
    }

    if (!corunOpts.comparisonCsv.empty()) {
        std::ofstream out(corunOpts.comparisonCsv);
        out << serveCsvHeader() << '\n';
        for (std::size_t i = 0; i < reports.size(); ++i) {
            appendServeCsv(out, reports[i],
                           points[i].label + "/" + points[i].config);
        }
        std::printf("Availability csv written to %s\n\n",
                    corunOpts.comparisonCsv.c_str());
    }

    // The recovery arm should hold availability at least as high as
    // the no-recovery contrast at every rate.
    double worstRecoveryDelta = 1e9;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (points[i].reaffinity)
            continue;
        // The matching recovery-on run is the affAlloc bankkill point
        // two slots earlier (nearL3, affAlloc, affAlloc-norec).
        const ServeReport &rec = reports[i - 1];
        const ServeReport &norec = reports[i];
        worstRecoveryDelta =
            std::min(worstRecoveryDelta,
                     rec.availability - norec.availability);
    }

    if (simcheckOpts.digest) {
        std::uint64_t overall = 0;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            const std::uint64_t d = reports[i].digest();
            overall = overall * 0x100000001b3ULL + d;
            std::printf("digest %s %s %s\n", points[i].label.c_str(),
                        points[i].config.c_str(),
                        simcheck::digestToString(d).c_str());
        }
        std::printf("digest overall - %s\n",
                    simcheck::digestToString(overall).c_str());
    }

    std::printf("Re-affinity recovery vs default spares under bank "
                "kills: worst availability delta %+.3f across %zu "
                "rates; %s\n",
                worstRecoveryDelta, rates.size(),
                allValid ? "all completed requests validated"
                         : "VALIDATION FAILURES (see above)");
    return allValid ? 0 : 1;
}
