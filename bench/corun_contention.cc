/**
 * @file
 * Multi-tenant co-run contention sweep: N workload instances share
 * one machine (banks, NoC, DRAM) under the epoch-interleaving
 * TenantScheduler, across tenant counts and affine/graph/pointer
 * mixes, comparing baseline static-NUCA placement (Near-L3) against
 * affinity allocation (Aff-Alloc). For each co-run the QoS report
 * gives per-tenant slowdown vs. a solo baseline, weighted speedup
 * (STP) and Jain fairness; the headline check is that Aff-Alloc keeps
 * its edge when tenants contend for shared banks.
 *
 * Flags: --quick --jobs N --simcheck [--simcheck-digest]
 *        --qos-csv PREFIX (per-co-run QoS CSV files)
 *        --csv PATH (per-tenant comparison CSV across configs)
 *        --sched rr|weighted --quantum N
 *        --trace-out PREFIX --heatmap banks (per-tenant overlays)
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "harness/trace.hh"
#include "obs/heatmap.hh"
#include "sim/simcheck.hh"
#include "tenant/qos.hh"
#include "tenant/scheduler.hh"

using namespace affalloc;
using namespace affalloc::tenant;

namespace
{

/** One co-run sweep point: a tenant mix at a count, under a mode. */
struct Point
{
    std::string label;    // e.g. "blend-x4"
    std::vector<TenantSpec> specs;
    ExecMode mode = ExecMode::affAlloc;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = harness::quickMode(argc, argv);
    const unsigned jobs = harness::parseJobs(argc, argv);
    harness::applySimThreads(argc, argv);
    harness::applyProfFlags(argc, argv);
    const harness::BenchSimCheck simcheckOpts =
        harness::BenchSimCheck::parse(argc, argv);
    const harness::BenchObs obsOpts = harness::BenchObs::parse(argc, argv);

    const harness::BenchCorun corunOpts =
        harness::BenchCorun::parse(argc, argv);
    const SchedPolicy policy = parseSchedPolicy(corunOpts.sched);
    const std::uint32_t quantum = corunOpts.quantumEpochs;
    const std::string &qosPrefix = corunOpts.qosPrefix;

    sim::MachineConfig cfg;
    simcheckOpts.apply(cfg);
    harness::printMachineBanner(cfg, "Co-run contention (multi-tenant)");
    std::printf("Scheduler: %s, quantum %u epochs%s\n\n",
                schedPolicyName(policy), quantum,
                quick ? " (REDUCED: --quick)" : "");

    // Mixes cover the three workload classes; counts cycle through
    // the mix, so e.g. blend-x4 = hotspot + bfs + hash_join + hotspot.
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        mixes = {
            {"affine", {"hotspot", "srad"}},
            {"pointer", {"hash_join", "bin_tree"}},
            {"blend", {"hotspot", "bfs", "hash_join"}},
        };
    const std::vector<std::size_t> counts = {2, 4};
    const ExecMode modes[2] = {ExecMode::nearL3, ExecMode::affAlloc};

    std::vector<Point> points;
    for (const auto &[mixName, mix] : mixes) {
        for (const std::size_t n : counts) {
            for (const ExecMode mode : modes) {
                Point pt;
                pt.label = mixName + "-x" + std::to_string(n);
                pt.mode = mode;
                for (std::size_t i = 0; i < n; ++i)
                    pt.specs.push_back(
                        {.workload = mix[i % mix.size()],
                         .weight = 1});
                points.push_back(std::move(pt));
            }
        }
    }

    std::vector<std::function<CorunReport()>> tasks;
    for (const Point &pt : points) {
        tasks.push_back([&pt, &cfg, &obsOpts, policy, quantum, quick] {
            CorunOptions opts;
            opts.machine = cfg;
            opts.mode = pt.mode;
            opts.policy = policy;
            opts.quantumEpochs = quantum;
            opts.quick = quick;
            if (!obsOpts.tracePrefix.empty()) {
                opts.obs.tracePath = harness::BenchObs::runFile(
                    obsOpts.tracePrefix, pt.label,
                    execModeName(pt.mode), ".json");
            }
            opts.obs.metrics = !obsOpts.heatmap.empty();
            return runCorun(pt.specs, opts);
        });
    }
    const std::vector<CorunReport> reports =
        harness::runSweep(jobs, tasks);

    // Near-L3 and Aff-Alloc alternate per (mix, count); compare pairs.
    std::printf("%-12s %6s | %14s %14s | %8s | %7s %7s | %7s %7s\n",
                "corun", "mode", "makespan", "vs near", "speedup",
                "stp", "stp_n", "fair", "fair_n");
    bool allValid = true;
    double worstAffSpeedup = 1e9;
    for (std::size_t i = 0; i + 1 < reports.size(); i += 2) {
        const Point &pt = points[i + 1];
        const CorunReport &near = reports[i];
        const CorunReport &aff = reports[i + 1];
        const double speedup =
            static_cast<double>(near.makespan) /
            static_cast<double>(aff.makespan ? aff.makespan : 1);
        worstAffSpeedup = std::min(worstAffSpeedup, speedup);
        allValid = allValid && near.allValid && aff.allValid;
        std::printf("%-12s %6s | %14llu %14llu | %7.2fx | %7.3f %7.3f "
                    "| %7.3f %7.3f\n",
                    pt.label.c_str(), "aff",
                    (unsigned long long)aff.makespan,
                    (unsigned long long)near.makespan, speedup,
                    aff.weightedSpeedup, near.weightedSpeedup,
                    aff.fairness, near.fairness);
    }
    std::printf("\n");

    if (!corunOpts.comparisonCsv.empty()) {
        // Per-tenant rows across the two configs, through the same
        // writeComparisonCsv surface the figure benches use.
        harness::Comparison cmp({execModeName(ExecMode::nearL3),
                                 execModeName(ExecMode::affAlloc)});
        for (std::size_t i = 0; i + 1 < reports.size(); i += 2) {
            const Point &pt = points[i];
            const CorunReport &near = reports[i];
            const CorunReport &aff = reports[i + 1];
            for (std::size_t t = 0; t < near.tenants.size(); ++t)
                cmp.add(pt.label + ":" + near.tenants[t].name,
                        {near.tenants[t].run, aff.tenants[t].run});
        }
        harness::writeComparisonCsv(
            cmp, {execModeName(ExecMode::nearL3),
                  execModeName(ExecMode::affAlloc)},
            corunOpts.comparisonCsv);
        std::printf("Per-tenant comparison csv written to %s\n\n",
                    corunOpts.comparisonCsv.c_str());
    }

    for (std::size_t i = 0; i < reports.size(); ++i) {
        const Point &pt = points[i];
        const std::string config = execModeName(pt.mode);
        printCorunReport(reports[i]);
        if (!qosPrefix.empty()) {
            const std::string path = harness::BenchObs::runFile(
                qosPrefix, pt.label, config, ".csv");
            writeQosCsv(path, reports[i], config);
            std::printf("  QoS csv written to %s\n", path.c_str());
        }
        if (obsOpts.heatmap == "banks" &&
            !reports[i].obsSnapshot.tenantBankAccesses.empty()) {
            std::fputs(
                obs::renderTenantBankHeatmaps(reports[i].obsSnapshot)
                    .c_str(),
                stdout);
        }
        std::printf("\n");
    }

    if (simcheckOpts.digest) {
        std::uint64_t overall = 0;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            const std::uint64_t d = reports[i].digest();
            overall = overall * 0x100000001b3ULL + d;
            std::printf("digest %s %s %s\n", points[i].label.c_str(),
                        execModeName(points[i].mode),
                        simcheck::digestToString(d).c_str());
        }
        std::printf("digest overall - %s\n",
                    simcheck::digestToString(overall).c_str());
    }

    std::printf("Aff-Alloc vs static-NUCA under contention: worst-case "
                "makespan speedup %.2fx across %zu co-runs; %s\n",
                worstAffSpeedup, reports.size() / 2,
                allValid ? "all runs validated"
                         : "VALIDATION FAILURES (see above)");
    return allValid ? 0 : 1;
}
